//! The server proper: one shared pool, a bounded fair-share admission
//! queue, and a fixed set of runner threads dispatching jobs onto the
//! pool.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use recdp::{prepare_job_with, prepare_sw_query, Execution, PreparedJob};
use recdp_cnc::{CncError, CncGraph, GraphStats};
use recdp_forkjoin::{ThreadPool, ThreadPoolBuilder};
use recdp_kernels::{IntegrityConfig, IntegrityMode, IntegrityReport};
use recdp_trace::{panic_message, TraceSession, Tracer};

use crate::job::{
    BatchMode, JobError, JobHandle, JobPayload, JobResult, JobShared, JobSpec, JobState,
    SubmitError,
};
use crate::scheduler::{QueuedJob, Scheduler};
use crate::stats::{ServerStats, TenantStats};

/// Server sizing and behaviour.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Workers in the one shared pool every job executes on.
    pub threads: usize,
    /// Admission-queue depth; submissions beyond it are refused with
    /// [`SubmitError::QueueFull`].
    pub queue_depth: usize,
    /// Runner threads, i.e. jobs executing concurrently. Each runner
    /// drives one job at a time; the jobs' parallelism comes from the
    /// shared pool, so this bounds graph-level concurrency, not
    /// thread-level.
    pub max_inflight: usize,
    /// Start with dispatch paused (submissions queue up but nothing
    /// runs until [`DpServer::resume`]) — lets tests and batch loaders
    /// build a backlog deterministically.
    pub paused: bool,
    /// Attach a fresh per-job [`Tracer`] to data-flow jobs and charge
    /// the measured step thread-time to the owning tenant (see
    /// [`TenantStats::busy_ns`]).
    pub trace_utilization: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 4,
            queue_depth: 256,
            max_inflight: 2,
            paused: false,
            trace_utilization: true,
        }
    }
}

struct Inner {
    cfg: ServerConfig,
    pool: Arc<ThreadPool>,
    sched: Mutex<Scheduler>,
    work: Condvar,
    paused: AtomicBool,
    shutting_down: AtomicBool,
    next_id: AtomicU64,
    running: AtomicU64,
    tenants: Mutex<HashMap<String, TenantStats>>,
}

/// A long-lived multi-tenant DP job server. One work-stealing pool is
/// built at startup and every job — fork-join or data-flow, any
/// benchmark, any size — executes on it; per-call pool construction
/// and teardown (the scheduling overhead axis of the paper) is paid
/// once per server, not once per job.
///
/// Jobs enter through [`DpServer::submit`] (bounded, refusing when
/// full), wait in per-tenant queues under weighted fair-share
/// scheduling with strict priority within a tenant, and execute on
/// `max_inflight` runner threads. Data-flow jobs get a fresh
/// [`CncGraph`] sharing the pool (as CnC programs share a TBB arena),
/// so runtime state — stats, retry budgets, checkpoints — is
/// job-scoped by construction while the threads are shared.
pub struct DpServer {
    inner: Arc<Inner>,
    runners: Vec<std::thread::JoinHandle<()>>,
}

impl DpServer {
    /// Builds the pool and starts the runner threads.
    pub fn new(cfg: ServerConfig) -> Self {
        assert!(cfg.threads >= 1, "need at least one pool worker");
        assert!(cfg.max_inflight >= 1, "need at least one runner");
        assert!(cfg.queue_depth >= 1, "queue depth must be positive");
        let pool = Arc::new(ThreadPoolBuilder::new().num_threads(cfg.threads).build());
        let inner = Arc::new(Inner {
            paused: AtomicBool::new(cfg.paused),
            cfg,
            pool,
            sched: Mutex::new(Scheduler::new()),
            work: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            running: AtomicU64::new(0),
            tenants: Mutex::new(HashMap::new()),
        });
        let runners = (0..inner.cfg.max_inflight)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("recdp-server-runner-{i}"))
                    .spawn(move || runner_loop(&inner))
                    .expect("spawn runner thread")
            })
            .collect();
        DpServer { inner, runners }
    }

    /// Submits a job, returning its handle — or refusing it if the
    /// bounded queue is full or the server is shutting down.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        let inner = &self.inner;
        if inner.shutting_down.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        // Refuse geometry the kernels would reject at the door: a bad
        // size used to surface as `JobError::Panicked` from deep inside
        // a runner (survivable, but opaque and charged to the tenant).
        if let Err(violation) = spec.validate() {
            bump_tenant(inner, &spec.tenant, |t| t.rejected += 1);
            return Err(SubmitError::InvalidSpec(violation));
        }
        let tenant = spec.tenant.clone();
        let (outcome, weight) = {
            let mut sched = inner.sched.lock();
            if sched.len() >= inner.cfg.queue_depth {
                (None, sched.weight_of(&tenant))
            } else {
                let id = inner.next_id.fetch_add(1, Ordering::SeqCst);
                let shared = JobShared::new(id, tenant.clone());
                sched.enqueue(QueuedJob {
                    shared: Arc::clone(&shared),
                    spec,
                    seq: id,
                });
                (Some(shared), sched.weight_of(&tenant))
            }
        };
        {
            let mut tenants = inner.tenants.lock();
            let stats = tenants.entry(tenant).or_default();
            stats.weight = weight;
            match &outcome {
                Some(_) => stats.submitted += 1,
                None => stats.rejected += 1,
            }
        }
        match outcome {
            Some(shared) => {
                inner.work.notify_one();
                Ok(JobHandle { shared })
            }
            None => Err(SubmitError::QueueFull {
                depth: inner.cfg.queue_depth,
            }),
        }
    }

    /// Pauses dispatch (running jobs finish; queued jobs stay queued).
    pub fn pause(&self) {
        self.inner.paused.store(true, Ordering::SeqCst);
    }

    /// Resumes dispatch after [`ServerConfig::paused`] or
    /// [`DpServer::pause`].
    pub fn resume(&self) {
        self.inner.paused.store(false, Ordering::SeqCst);
        self.inner.work.notify_all();
    }

    /// Sets `tenant`'s fair-share weight (relative to other tenants;
    /// default 1). Takes effect from the next dispatch.
    pub fn set_tenant_weight(&self, tenant: &str, weight: f64) {
        self.inner.sched.lock().set_weight(tenant, weight);
        self.inner
            .tenants
            .lock()
            .entry(tenant.to_string())
            .or_default()
            .weight = weight;
    }

    /// The shared pool every job executes on.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.inner.pool
    }

    /// Workers that have died fail-stop since startup (pool-level
    /// supervision state — visible across jobs by design).
    pub fn worker_deaths(&self) -> usize {
        self.inner.pool.worker_deaths()
    }

    /// Live workers in the shared pool.
    pub fn alive_workers(&self) -> usize {
        self.inner.pool.alive_workers()
    }

    /// Jobs currently waiting in the admission queue.
    pub fn queue_len(&self) -> usize {
        self.inner.sched.lock().len()
    }

    /// Cumulative accounting for one tenant, if it ever submitted.
    pub fn tenant_stats(&self, tenant: &str) -> Option<TenantStats> {
        self.inner.tenants.lock().get(tenant).copied()
    }

    /// Whole-server aggregates.
    pub fn stats(&self) -> ServerStats {
        let mut out = ServerStats::default();
        for t in self.inner.tenants.lock().values() {
            out.submitted += t.submitted;
            out.rejected += t.rejected;
            out.completed += t.completed;
            out.failed += t.failed;
            out.cancelled += t.cancelled;
        }
        out.queued = self.queue_len() as u64;
        out.running = self.inner.running.load(Ordering::SeqCst);
        out
    }

    /// Stops dispatch, fails every still-queued job with
    /// [`JobError::ShutDown`], joins the runners and tears down the
    /// pool. Running jobs finish first.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        if self.inner.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.inner.work.notify_all();
        for runner in self.runners.drain(..) {
            let _ = runner.join();
        }
        let drained = self.inner.sched.lock().drain();
        for job in drained {
            if job.shared.is_done() {
                // Cancelled while queued; the runner never saw it.
                bump_tenant(&self.inner, &job.shared.tenant, |t| t.cancelled += 1);
            } else {
                job.shared.finish(Err(JobError::ShutDown));
                bump_tenant(&self.inner, &job.shared.tenant, |t| t.failed += 1);
            }
        }
        // With the runners joined and their graphs dropped, the last
        // pool reference goes away with the server and the pool's own
        // `Drop` joins the workers (a quiesced server has no queued
        // fire-and-forget jobs to lose).
    }
}

impl Drop for DpServer {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn bump_tenant(inner: &Inner, tenant: &str, f: impl FnOnce(&mut TenantStats)) {
    let mut tenants = inner.tenants.lock();
    f(tenants.entry(tenant.to_string()).or_default());
}

/// What one execution produced, before tenant accounting.
struct Executed {
    result: Result<JobResult, JobError>,
    /// Busy thread-time to charge (traced step work when available,
    /// wall time otherwise).
    busy_ns: u64,
    steps_completed: u64,
    /// Integrity-layer activity to account to the tenant (also charged
    /// when the job *fails* with an unrepairable tile — the detection
    /// and repair work happened either way).
    corruptions_detected: u64,
    tiles_recomputed: u64,
}

fn runner_loop(inner: &Arc<Inner>) {
    loop {
        let job = {
            let mut sched = inner.sched.lock();
            loop {
                if inner.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                if !inner.paused.load(Ordering::SeqCst) {
                    if let Some(job) = sched.pick() {
                        break job;
                    }
                }
                inner.work.wait(&mut sched);
            }
        };
        if job.shared.is_done() {
            // Cancelled while queued: the handle already resolved; the
            // queue entry is just discarded.
            bump_tenant(inner, &job.shared.tenant, |t| t.cancelled += 1);
            continue;
        }
        *job.shared.state.lock() = JobState::Running;
        inner.running.fetch_add(1, Ordering::SeqCst);
        let queued_s = job.shared.submitted_at.elapsed().as_secs_f64();
        let started = Instant::now();
        let executed = match catch_unwind(AssertUnwindSafe(|| execute(inner, &job, queued_s))) {
            Ok(executed) => executed,
            Err(panic) => Executed {
                result: Err(JobError::Panicked(panic_message(&*panic))),
                busy_ns: started.elapsed().as_nanos() as u64,
                steps_completed: 0,
                corruptions_detected: 0,
                tiles_recomputed: 0,
            },
        };
        let run_ns = started.elapsed().as_nanos() as u64;
        bump_tenant(inner, &job.shared.tenant, |t| {
            t.queue_wait_ns += (queued_s * 1e9) as u64;
            t.run_ns += run_ns;
            t.busy_ns += executed.busy_ns;
            t.steps_completed += executed.steps_completed;
            t.work_charged += job.spec.cost();
            t.corruptions_detected += executed.corruptions_detected;
            t.tiles_recomputed += executed.tiles_recomputed;
            match &executed.result {
                Ok(_) => t.completed += 1,
                Err(JobError::Cancelled(_)) => t.cancelled += 1,
                Err(_) => t.failed += 1,
            }
        });
        job.shared.finish(executed.result);
        inner.running.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Builds a job-scoped graph on the shared pool, armed with the job's
/// SLA surface, and installs its cancel token on the handle.
fn arm_graph(
    inner: &Inner,
    job: &QueuedJob,
    remaining: Option<Duration>,
    tracer: Option<&Arc<Tracer>>,
) -> CncGraph {
    let graph = CncGraph::with_pool(Arc::clone(&inner.pool));
    graph.set_retry_policy(job.spec.retry);
    if let Some(d) = remaining {
        graph.set_deadline(d);
    }
    if let Some(injector) = &job.spec.injector {
        graph.set_fault_injector(Arc::clone(injector));
    }
    if let Some(tracer) = tracer {
        graph.set_tracer(Arc::clone(tracer));
    }
    let token = graph.cancel_token();
    *job.shared.run_token.lock() = Some(token.clone());
    // Token is installed; a cancel that raced the install left the
    // flag set without reaching a token — honour it now.
    if job.shared.cancel_requested.load(Ordering::SeqCst) {
        token.cancel(job.shared.cancel_reason.lock().clone());
    }
    graph
}

fn map_cnc_err(e: CncError) -> JobError {
    match e {
        CncError::Cancelled { reason } => JobError::Cancelled(reason),
        other => JobError::Cnc(other),
    }
}

fn add_stats(acc: &mut GraphStats, s: GraphStats) {
    acc.steps_started += s.steps_started;
    acc.steps_completed += s.steps_completed;
    acc.steps_requeued += s.steps_requeued;
    acc.steps_retried += s.steps_retried;
    acc.faults_injected += s.faults_injected;
    acc.delays_injected += s.delays_injected;
    acc.items_put += s.items_put;
    acc.gets_ok += s.gets_ok;
    acc.gets_blocked += s.gets_blocked;
    acc.gets_nb_missing += s.gets_nb_missing;
    acc.nb_retries += s.nb_retries;
    acc.tags_put += s.tags_put;
    acc.steps_skipped += s.steps_skipped;
    acc.items_restored += s.items_restored;
}

/// The job's integrity runtime configuration, or `None` when its
/// declared mode is `Off`: the spec's [`IntegrityOptions`] with the
/// job's fault injector attached as the corruption source.
///
/// [`IntegrityOptions`]: recdp_kernels::IntegrityOptions
fn integrity_config(spec: &JobSpec) -> Option<IntegrityConfig> {
    if spec.integrity.mode == IntegrityMode::Off {
        return None;
    }
    let mut cfg = IntegrityConfig::from(spec.integrity);
    if let Some(injector) = &spec.injector {
        cfg = cfg.with_injector(Arc::clone(injector));
    }
    Some(cfg)
}

fn execute(inner: &Inner, job: &QueuedJob, queued_s: f64) -> Executed {
    let spec = &job.spec;
    // The SLA clock started at submission: a job that already blew its
    // deadline in the queue fails without running; otherwise the
    // remaining budget is armed on its graph(s).
    let remaining = match spec.deadline {
        Some(d) => match d.checked_sub(job.shared.submitted_at.elapsed()) {
            Some(r) => Some(r),
            None => {
                return Executed {
                    result: Err(JobError::Cnc(CncError::Timeout {
                        deadline: d,
                        pending: 0,
                        blocked: 0,
                    })),
                    busy_ns: 0,
                    steps_completed: 0,
                    corruptions_detected: 0,
                    tiles_recomputed: 0,
                }
            }
        },
        None => None,
    };
    let uses_cnc = matches!(
        spec.payload,
        JobPayload::Benchmark {
            execution: Execution::Cnc(_),
            ..
        } | JobPayload::SwBatch { .. }
    );
    let tracer = (inner.cfg.trace_utilization && uses_cnc).then(Tracer::new);
    let started = Instant::now();
    type Outcome = Result<
        (
            Vec<PreparedJob>,
            Option<GraphStats>,
            Option<IntegrityReport>,
        ),
        JobError,
    >;
    let outcome: Outcome = match &spec.payload {
        JobPayload::Benchmark {
            benchmark,
            execution,
            n,
            base,
            decomposition,
        } => {
            // `validate` admitted the width at submit, so constructing
            // the checked newtype here cannot panic.
            let mut p = prepare_job_with(
                *benchmark,
                *n,
                *base,
                recdp_kernels::Decomposition::new(*decomposition),
            );
            match execution {
                Execution::SerialLoops => {
                    // The loops oracle is not tile-structured; the
                    // integrity policy has nothing to attach to.
                    p.run_loops();
                    Ok((vec![p], None, None))
                }
                Execution::SerialRdp => {
                    let report = match integrity_config(spec) {
                        Some(cfg) => Some(p.run_serial_checked(cfg)),
                        None => {
                            p.run_serial_rdp();
                            None
                        }
                    };
                    Ok((vec![p], None, report))
                }
                Execution::ForkJoin => {
                    let report = match integrity_config(spec) {
                        Some(cfg) => Some(p.run_forkjoin_checked(&inner.pool, cfg)),
                        None => {
                            p.run_forkjoin(&inner.pool);
                            None
                        }
                    };
                    Ok((vec![p], None, report))
                }
                Execution::Cnc(v) => {
                    let graph = arm_graph(inner, job, remaining, tracer.as_ref());
                    match integrity_config(spec) {
                        Some(cfg) => p
                            .run_cnc_checked_on(*v, &graph, cfg)
                            .map(|(stats, report)| (vec![p], Some(stats), Some(report)))
                            .map_err(map_cnc_err),
                        None => p
                            .run_cnc_on(*v, &graph)
                            .map(|stats| (vec![p], Some(stats), None))
                            .map_err(map_cnc_err),
                    }
                }
            }
        }
        JobPayload::SwBatch {
            queries,
            mode,
            variant,
        } => {
            let jobs: Vec<PreparedJob> = queries
                .iter()
                .map(|q| prepare_sw_query(&q.a, &q.b, q.n, q.base))
                .collect();
            let icfg = integrity_config(spec);
            match mode {
                BatchMode::Coalesced => {
                    let graph = arm_graph(inner, job, remaining, tracer.as_ref());
                    // One integrity state per registration (their digest
                    // registries are per-query, like the collections);
                    // the per-query reports merge after quiescence.
                    let states: Vec<_> = match &icfg {
                        Some(cfg) => jobs
                            .iter()
                            .map(|p| p.register_cnc_checked(*variant, &graph, cfg.clone()))
                            .collect(),
                        None => {
                            for p in &jobs {
                                p.register_cnc(*variant, &graph);
                            }
                            Vec::new()
                        }
                    };
                    graph
                        .wait()
                        .map(|stats| {
                            let report = icfg.is_some().then(|| {
                                states
                                    .iter()
                                    .map(|s| s.report())
                                    .fold(IntegrityReport::default(), IntegrityReport::merge)
                            });
                            (jobs, Some(stats), report)
                        })
                        .map_err(map_cnc_err)
                }
                BatchMode::PerQuery => {
                    let mut acc = GraphStats::default();
                    let mut report: Option<IntegrityReport> = None;
                    let mut failure = None;
                    for p in &jobs {
                        if job.shared.cancel_requested.load(Ordering::SeqCst) {
                            failure =
                                Some(JobError::Cancelled(job.shared.cancel_reason.lock().clone()));
                            break;
                        }
                        let graph = arm_graph(inner, job, remaining, tracer.as_ref());
                        let res = match &icfg {
                            Some(cfg) => p.run_cnc_checked_on(*variant, &graph, cfg.clone()).map(
                                |(stats, r)| {
                                    report = Some(report.unwrap_or_default().merge(r));
                                    stats
                                },
                            ),
                            None => p.run_cnc_on(*variant, &graph),
                        };
                        match res {
                            Ok(stats) => add_stats(&mut acc, stats),
                            Err(e) => {
                                failure = Some(map_cnc_err(e));
                                break;
                            }
                        }
                    }
                    match failure {
                        None => Ok((jobs, Some(acc), report)),
                        Some(e) => Err(e),
                    }
                }
            }
        }
    };
    let seconds = started.elapsed().as_secs_f64();
    let (busy_ns, steps_completed) = match &tracer {
        Some(tracer) => {
            let report =
                TraceSession::with_tracer(Arc::clone(tracer), inner.pool.num_threads()).report();
            (report.work_ns, report.steps)
        }
        None => ((seconds * 1e9) as u64, 0),
    };
    let mut corruptions_detected = 0;
    let mut tiles_recomputed = 0;
    let result = outcome.and_then(|(jobs, cnc_stats, integrity)| {
        if let Some(r) = &integrity {
            // Charge the detection/repair work to the tenant whether or
            // not the job survives it.
            corruptions_detected = r.corruptions_detected + r.put_corruptions_detected;
            tiles_recomputed = r.tiles_recomputed;
            // An unrepairable tile means the tables are corrupt: the
            // result is withheld, not served.
            r.ok().map_err(JobError::Integrity)?;
        }
        let tables: Vec<_> = jobs.into_iter().map(PreparedJob::into_table).collect();
        let digests = tables.iter().map(|t| t.bit_digest()).collect();
        Ok(JobResult {
            tables,
            digests,
            seconds,
            queued_seconds: queued_s,
            cnc_stats,
            integrity,
        })
    });
    Executed {
        result,
        busy_ns,
        steps_completed,
        corruptions_detected,
        tiles_recomputed,
    }
}
