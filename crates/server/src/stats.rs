//! Per-tenant utilization accounting.

/// Cumulative accounting for one tenant, fed by the scheduler (queue
/// events) and the runners (execution events). Busy time for
/// data-flow jobs is the *measured work* from a per-job
/// [`recdp_trace::Tracer`] — actual step thread-time on the shared
/// pool — so a tenant is charged for what its steps consumed, not for
/// wall time the pool spent on other tenants' steps interleaved with
/// its own. Serial and fork-join jobs fall back to wall time (the
/// pool's tracer slot is fixed at build and cannot be retargeted per
/// job).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TenantStats {
    /// Fair-share weight at the last accounting event.
    pub weight: f64,
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs refused by admission control.
    pub rejected: u64,
    /// Jobs that finished with a result.
    pub completed: u64,
    /// Jobs that finished with an error other than cancellation.
    pub failed: u64,
    /// Jobs cancelled (in queue or mid-run).
    pub cancelled: u64,
    /// Total time completed/failed jobs spent queued, in nanoseconds.
    pub queue_wait_ns: u64,
    /// Total wall-clock execution time of dispatched jobs, in
    /// nanoseconds.
    pub run_ns: u64,
    /// Measured busy thread-time charged to this tenant, in
    /// nanoseconds (traced step work for data-flow jobs, wall time
    /// otherwise).
    pub busy_ns: u64,
    /// Fair-share cost charged at dispatch (the stride currency).
    pub work_charged: f64,
    /// CnC steps completed on behalf of this tenant.
    pub steps_completed: u64,
    /// Silent tile corruptions the integrity layer detected across
    /// this tenant's checked jobs (cell flips and mangled puts).
    pub corruptions_detected: u64,
    /// Corrupted tiles healed by recompute-from-pre-image for this
    /// tenant — the self-healing work the tenant's jobs triggered.
    pub tiles_recomputed: u64,
}

/// Whole-server aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Jobs accepted across all tenants.
    pub submitted: u64,
    /// Jobs refused by admission control.
    pub rejected: u64,
    /// Jobs finished with a result.
    pub completed: u64,
    /// Jobs finished with a non-cancellation error.
    pub failed: u64,
    /// Jobs cancelled.
    pub cancelled: u64,
    /// Jobs currently queued.
    pub queued: u64,
    /// Jobs currently executing.
    pub running: u64,
}
