//! Greedy list-scheduling discrete-event engine.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use recdp_taskgraph::{TaskGraph, TaskKind};

use crate::result::SimResult;

/// Ready-queue discipline of the simulated scheduler. Real work-stealing
/// runtimes are neither pure FIFO nor pure LIFO; the two extremes bound
/// the behaviour and are exposed for the scheduling-policy ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// Oldest ready task first (breadth-first; the default).
    #[default]
    Fifo,
    /// Youngest ready task first (depth-first, like a local deque pop).
    Lifo,
}

/// Fully-resolved simulation parameters (see [`crate::overhead`] for the
/// machine/paradigm assembly).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Number of simulated workers (`P`).
    pub processors: usize,
    /// Effective nanoseconds per flop of node weight: compute time plus
    /// amortised cache-miss penalties.
    pub ns_per_flop: f64,
    /// Fixed software overhead charged per compute task (spawn +
    /// dispatch + expected requeue cost + pre-declaration cost).
    pub per_task_ns: f64,
    /// Latency of a synchronisation (Sync) node. Sync nodes delay their
    /// successors but do not occupy a worker (the joining task is
    /// blocked, its worker helps elsewhere).
    pub join_ns: f64,
    /// Ready-queue discipline.
    pub policy: QueuePolicy,
}

impl SimConfig {
    /// Duration of one node under this configuration.
    #[inline]
    pub fn duration(&self, kind: TaskKind, weight: f64) -> f64 {
        if kind.is_compute() {
            weight * self.ns_per_flop + self.per_task_ns
        } else {
            self.join_ns
        }
    }
}

/// Finish-time event ordered for a min-heap.
#[derive(PartialEq)]
struct Finish {
    time: f64,
    node: u32,
    occupies_worker: bool,
}

impl Eq for Finish {}

impl PartialOrd for Finish {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Finish {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Total order: times are finite by construction; tie-break on id
        // for determinism.
        self.time
            .partial_cmp(&other.time)
            .expect("finite times")
            .then(self.node.cmp(&other.node))
    }
}

/// Simulates `graph` under greedy list scheduling with `cfg`.
///
/// Ready compute tasks are dispatched FIFO to idle workers; a worker is
/// never idle while a ready task exists (so, with software overheads
/// folded into task durations, the makespan obeys Brent's bound
/// `max(T1/P, Tinf) <= makespan <= T1/P + Tinf`).
pub fn simulate(graph: &TaskGraph, cfg: &SimConfig) -> SimResult {
    simulate_with_timeline(graph, cfg, 0).0
}

/// Like [`simulate`], additionally returning a worker-utilisation
/// timeline: the makespan is split into `buckets` equal windows and each
/// entry is the fraction of worker-time spent busy in that window (the
/// quantity behind the paper's "threads becoming idle" discussion).
/// `buckets = 0` skips timeline accounting.
pub fn simulate_with_timeline(
    graph: &TaskGraph,
    cfg: &SimConfig,
    buckets: usize,
) -> (SimResult, Vec<f64>) {
    assert!(cfg.processors > 0, "need at least one processor");
    assert!(cfg.ns_per_flop >= 0.0 && cfg.per_task_ns >= 0.0 && cfg.join_ns >= 0.0);
    let mut in_deg = graph.in_degrees();
    let mut ready: VecDeque<u32> = graph.roots().into();
    let mut events: BinaryHeap<Reverse<Finish>> = BinaryHeap::new();
    let mut idle = cfg.processors;
    let mut now = 0.0f64;
    let mut makespan = 0.0f64;
    let mut busy_ns = 0.0f64;
    let mut compute_tasks = 0usize;
    let mut executed = 0usize;
    // (start, duration) of every compute task, for the timeline.
    let mut intervals: Vec<(f64, f64)> = Vec::new();

    loop {
        // Dispatch everything we can at the current instant.
        while let Some(&node) = match cfg.policy {
            QueuePolicy::Fifo => ready.front(),
            QueuePolicy::Lifo => ready.back(),
        } {
            let kind = graph.kind(node);
            if kind.is_compute() {
                if idle == 0 {
                    break;
                }
                idle -= 1;
                let d = cfg.duration(kind, graph.weight(node));
                busy_ns += d;
                compute_tasks += 1;
                if buckets > 0 {
                    intervals.push((now, d));
                }
                events.push(Reverse(Finish {
                    time: now + d,
                    node,
                    occupies_worker: true,
                }));
            } else {
                // Sync nodes delay successors without occupying a worker.
                let d = cfg.duration(kind, 0.0);
                events.push(Reverse(Finish {
                    time: now + d,
                    node,
                    occupies_worker: false,
                }));
            }
            match cfg.policy {
                QueuePolicy::Fifo => ready.pop_front(),
                QueuePolicy::Lifo => ready.pop_back(),
            };
        }
        let Some(Reverse(ev)) = events.pop() else {
            break;
        };
        now = ev.time;
        makespan = makespan.max(now);
        if ev.occupies_worker {
            idle += 1;
        }
        executed += 1;
        for &s in graph.successors(ev.node) {
            in_deg[s as usize] -= 1;
            if in_deg[s as usize] == 0 {
                ready.push_back(s);
            }
        }
    }
    assert!(ready.is_empty(), "scheduler stalled with ready tasks");
    assert_eq!(
        executed,
        graph.len(),
        "every node must execute exactly once"
    );
    let timeline = if buckets > 0 && makespan > 0.0 {
        let mut busy_per_bucket = vec![0.0f64; buckets];
        let width = makespan / buckets as f64;
        for (start, dur) in intervals {
            // Spread each task's duration over the buckets it overlaps.
            // Iterate bucket *indices* (an integer loop — floating-point
            // boundary walking can stall when `k * width` rounds onto
            // the current position) and clip the interval against each
            // bucket window; the last bucket absorbs any rounding tail.
            let end = start + dur;
            let first = ((start / width) as usize).min(buckets - 1);
            let last = ((end / width) as usize).min(buckets - 1);
            #[allow(clippy::needless_range_loop)]
            for b in first..=last {
                let lo = (b as f64 * width).max(start);
                let hi = if b + 1 == buckets {
                    end
                } else {
                    ((b + 1) as f64 * width).min(end)
                };
                busy_per_bucket[b] += (hi - lo).max(0.0);
            }
        }
        busy_per_bucket
            .into_iter()
            .map(|b| b / (width * cfg.processors as f64))
            .collect()
    } else {
        Vec::new()
    };
    (
        SimResult {
            makespan_ns: makespan,
            busy_ns,
            processors: cfg.processors,
            compute_tasks,
            utilization: if makespan > 0.0 {
                busy_ns / (makespan * cfg.processors as f64)
            } else {
                0.0
            },
            wasted_ns: 0.0,
            reexecuted_tasks: 0,
            worker_failures: 0,
            worker_respawns: 0,
        },
        timeline,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use recdp_taskgraph::{GraphBuilder, TaskKind};

    pub(super) fn cfg(p: usize) -> SimConfig {
        SimConfig {
            processors: p,
            ns_per_flop: 1.0,
            per_task_ns: 0.0,
            join_ns: 0.0,
            policy: QueuePolicy::Fifo,
        }
    }

    fn chain(n: usize, w: f64) -> recdp_taskgraph::TaskGraph {
        let mut b = GraphBuilder::new();
        let mut prev = None;
        for _ in 0..n {
            let id = b.add_node(TaskKind::Tile, w);
            if let Some(p) = prev {
                b.add_edge(p, id);
            }
            prev = Some(id);
        }
        b.build()
    }

    fn independent(n: usize, w: f64) -> recdp_taskgraph::TaskGraph {
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            b.add_node(TaskKind::Tile, w);
        }
        b.build()
    }

    #[test]
    fn chain_takes_span_time_regardless_of_p() {
        let g = chain(10, 3.0);
        for p in [1, 4, 64] {
            let r = simulate(&g, &cfg(p));
            assert!((r.makespan_ns - 30.0).abs() < 1e-9, "p = {p}");
        }
    }

    #[test]
    fn independent_tasks_scale_perfectly() {
        let g = independent(64, 2.0);
        let r1 = simulate(&g, &cfg(1));
        let r64 = simulate(&g, &cfg(64));
        assert!((r1.makespan_ns - 128.0).abs() < 1e-9);
        assert!((r64.makespan_ns - 2.0).abs() < 1e-9);
        assert!((r64.utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn busy_time_equals_total_work() {
        let g = independent(10, 5.0);
        let r = simulate(&g, &cfg(3));
        assert!((r.busy_ns - 50.0).abs() < 1e-9);
        assert_eq!(r.compute_tasks, 10);
    }

    #[test]
    fn per_task_overhead_charged() {
        let g = independent(4, 10.0);
        let c = SimConfig {
            per_task_ns: 5.0,
            ..cfg(1)
        };
        let r = simulate(&g, &c);
        assert!((r.makespan_ns - 60.0).abs() < 1e-9);
    }

    #[test]
    fn sync_nodes_do_not_occupy_workers() {
        // a -> sync -> {b, c} with 1 worker: sync latency overlaps with
        // nothing (no worker is tied up by it).
        let mut b = GraphBuilder::new();
        let a = b.add_node(TaskKind::Tile, 10.0);
        let s = b.add_node(TaskKind::Sync, 0.0);
        let x = b.add_node(TaskKind::Tile, 10.0);
        let y = b.add_node(TaskKind::Tile, 10.0);
        b.add_edge(a, s);
        b.add_edge(s, x);
        b.add_edge(s, y);
        let g = b.build();
        let c = SimConfig {
            join_ns: 7.0,
            ..cfg(2)
        };
        let r = simulate(&g, &c);
        // 10 (a) + 7 (join) + 10 (x || y on two workers).
        assert!((r.makespan_ns - 27.0).abs() < 1e-9, "{}", r.makespan_ns);
    }

    #[test]
    fn brent_bound_on_ge_dataflow() {
        use recdp_taskgraph::{dataflow, ge_kernel_flops, metrics::analyze};
        let f = ge_kernel_flops(8);
        let g = dataflow::ge(12, &f);
        let m = analyze(&g);
        for p in [1usize, 2, 8, 64] {
            let r = simulate(&g, &cfg(p));
            let lower = (m.work / p as f64).max(m.span);
            let upper = m.work / p as f64 + m.span;
            assert!(
                r.makespan_ns >= lower - 1e-6 && r.makespan_ns <= upper + 1e-6,
                "p={p}: {} not in [{lower}, {upper}]",
                r.makespan_ns
            );
        }
    }

    #[test]
    fn single_processor_makespan_is_work() {
        use recdp_taskgraph::{dataflow, metrics::analyze, sw_kernel_flops};
        let g = dataflow::sw(8, &sw_kernel_flops(4));
        let m = analyze(&g);
        let r = simulate(&g, &cfg(1));
        assert!((r.makespan_ns - m.work).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let g = independent(1, 1.0);
        let _ = simulate(&g, &cfg(0));
    }
}

#[cfg(test)]
mod timeline_tests {
    use super::tests::cfg;
    use super::*;
    use recdp_taskgraph::{GraphBuilder, TaskKind};

    #[test]
    fn timeline_integrates_to_overall_utilization() {
        let mut b = GraphBuilder::new();
        let top = b.add_node(TaskKind::Tile, 10.0);
        for _ in 0..6 {
            let x = b.add_node(TaskKind::Tile, 5.0);
            b.add_edge(top, x);
        }
        let g = b.build();
        let (r, timeline) = simulate_with_timeline(&g, &cfg(3), 8);
        assert_eq!(timeline.len(), 8);
        let mean: f64 = timeline.iter().sum::<f64>() / 8.0;
        assert!(
            (mean - r.utilization).abs() < 1e-9,
            "{mean} vs {}",
            r.utilization
        );
        // During the serial head, only 1/3 of workers are busy.
        assert!(timeline[0] < 0.5);
    }

    #[test]
    fn lifo_policy_changes_order_not_invariants() {
        let mut b = GraphBuilder::new();
        for i in 0..10 {
            b.add_node(TaskKind::Tile, 1.0 + i as f64);
        }
        let g = b.build();
        let fifo = simulate(&g, &cfg(2));
        let lifo = simulate(
            &g,
            &SimConfig {
                policy: QueuePolicy::Lifo,
                ..cfg(2)
            },
        );
        // Same work either way; makespans may differ but both respect
        // the lower bound.
        assert!((fifo.busy_ns - lifo.busy_ns).abs() < 1e-9);
        let work: f64 = (0..10).map(|i| 1.0 + i as f64).sum();
        assert!(fifo.makespan_ns >= work / 2.0 - 1e-9);
        assert!(lifo.makespan_ns >= work / 2.0 - 1e-9);
    }

    #[test]
    fn zero_buckets_skips_timeline() {
        let mut b = GraphBuilder::new();
        b.add_node(TaskKind::Tile, 1.0);
        let g = b.build();
        let (_, timeline) = simulate_with_timeline(&g, &cfg(1), 0);
        assert!(timeline.is_empty());
    }
}
