//! Fail-stop worker failures for the discrete-event engine.
//!
//! [`simulate_with_failures`] replays a task DAG like
//! [`crate::simulate`], but kills one worker at each requested time: the
//! task running on the victim is lost mid-flight and re-executes from
//! scratch on a surviving worker (fail-stop with work-conserving
//! re-execution — the model behind graceful-degradation makespan
//! curves). The victim is chosen adversarially: the alive worker whose
//! current task would finish last, maximising the work thrown away.
//!
//! The recovery model mirrors the real pool's
//! `recdp_forkjoin::RecoveryMode`: [`SimRecovery::Degrade`] (the
//! default, and the semantics of the original `simulate_with_failures`
//! signature) leaves the victim dead for the rest of the run, while
//! [`SimRecovery::Respawn`] brings a replacement worker online after a
//! configurable delay — the supervisor's detect-and-respawn latency.
//!
//! One survivor is always kept (a kill that would take the last alive
//! worker is skipped), so every run completes and the makespan measures
//! degradation, not starvation.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use recdp_taskgraph::TaskGraph;

use crate::engine::{QueuePolicy, SimConfig};
use crate::result::SimResult;

/// Finish event, ordered for a min-heap. `worker` is `None` for sync
/// nodes (which occupy no worker and cannot be killed); `epoch` guards
/// against stale events for re-executed tasks.
#[derive(PartialEq)]
struct Finish {
    time: f64,
    node: u32,
    worker: Option<usize>,
    epoch: u32,
}

impl Eq for Finish {}

impl PartialOrd for Finish {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Finish {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .partial_cmp(&other.time)
            .expect("finite times")
            .then(self.node.cmp(&other.node))
            .then(self.epoch.cmp(&other.epoch))
    }
}

#[derive(Clone, Copy)]
struct Running {
    node: u32,
    start: f64,
    finish: f64,
    epoch: u32,
}

/// What happens to a killed worker, mirroring the real pool's
/// `recdp_forkjoin::RecoveryMode`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SimRecovery {
    /// The victim stays dead; the pool degrades to the survivors.
    #[default]
    Degrade,
    /// A replacement worker comes online `delay_ns` after the kill (the
    /// supervisor's detect-and-respawn latency; `0.0` models an instant
    /// respawn).
    Respawn {
        /// Nanoseconds between the kill and the replacement going live.
        delay_ns: f64,
    },
}

/// Simulates `graph` under greedy list scheduling with one fail-stop
/// worker failure per entry of `kill_times_ns` (ascending order not
/// required; times are sorted internally), under [`SimRecovery::Degrade`].
/// Returns the usual [`SimResult`] with the resilience fields populated:
/// `wasted_ns` (partial executions lost), `reexecuted_tasks`, and
/// `worker_failures` (kills actually applied — a kill arriving after the
/// run finished, or when only one worker survives, is skipped).
pub fn simulate_with_failures(
    graph: &TaskGraph,
    cfg: &SimConfig,
    kill_times_ns: &[u64],
) -> SimResult {
    simulate_with_recovery(graph, cfg, kill_times_ns, SimRecovery::Degrade)
}

/// [`simulate_with_failures`] with an explicit [`SimRecovery`] mode:
/// degrade reproduces `simulate_with_failures` exactly, respawn revives
/// each victim's slot after the configured delay (so capacity dips only
/// transiently, like the real pool's supervisor under
/// `RecoveryMode::Respawn`).
pub fn simulate_with_recovery(
    graph: &TaskGraph,
    cfg: &SimConfig,
    kill_times_ns: &[u64],
    recovery: SimRecovery,
) -> SimResult {
    assert!(cfg.processors > 0, "need at least one processor");
    let mut kills: Vec<f64> = kill_times_ns.iter().map(|&t| t as f64).collect();
    kills.sort_by(|a, b| a.partial_cmp(b).expect("finite kill times"));
    let mut next_kill = 0usize;

    let mut in_deg = graph.in_degrees();
    let mut ready: VecDeque<u32> = graph.roots().into();
    let mut events: BinaryHeap<Reverse<Finish>> = BinaryHeap::new();
    // Per-node execution epoch: a Finish event whose epoch is stale
    // belongs to an execution killed earlier and is ignored.
    let mut epoch: Vec<u32> = vec![0; graph.len()];
    let mut alive: Vec<bool> = vec![true; cfg.processors];
    let mut running: Vec<Option<Running>> = vec![None; cfg.processors];
    let mut alive_count = cfg.processors;

    let mut now = 0.0f64;
    let mut makespan = 0.0f64;
    let mut busy_ns = 0.0f64;
    let mut wasted_ns = 0.0f64;
    let mut compute_tasks = 0usize;
    let mut reexecuted_tasks = 0usize;
    let mut worker_failures = 0usize;
    let mut worker_respawns = 0usize;
    let mut executed = 0usize;
    // Pending respawns as (time, worker). Kills are processed in
    // ascending time order and the respawn delay is constant, so pushes
    // arrive in non-decreasing time order and a FIFO queue stays sorted.
    let mut revives: VecDeque<(f64, usize)> = VecDeque::new();

    loop {
        // Dispatch everything we can at the current instant.
        while let Some(&node) = match cfg.policy {
            QueuePolicy::Fifo => ready.front(),
            QueuePolicy::Lifo => ready.back(),
        } {
            let kind = graph.kind(node);
            if kind.is_compute() {
                let Some(w) = (0..cfg.processors).find(|&w| alive[w] && running[w].is_none())
                else {
                    break;
                };
                let d = cfg.duration(kind, graph.weight(node));
                compute_tasks += 1;
                running[w] = Some(Running {
                    node,
                    start: now,
                    finish: now + d,
                    epoch: epoch[node as usize],
                });
                events.push(Reverse(Finish {
                    time: now + d,
                    node,
                    worker: Some(w),
                    epoch: epoch[node as usize],
                }));
            } else {
                let d = cfg.duration(kind, 0.0);
                events.push(Reverse(Finish {
                    time: now + d,
                    node,
                    worker: None,
                    epoch: epoch[node as usize],
                }));
            }
            match cfg.policy {
                QueuePolicy::Fifo => ready.pop_front(),
                QueuePolicy::Lifo => ready.pop_back(),
            };
        }

        // Next finish event, skipping tombstones of killed executions.
        let next_finish = loop {
            match events.peek() {
                Some(Reverse(ev)) if ev.epoch != epoch[ev.node as usize] => {
                    events.pop();
                }
                Some(Reverse(ev)) => break Some(ev.time),
                None => break None,
            }
        };

        // Interleave kills and respawns with finishes in time order.
        // Administrative events only matter while work remains in
        // flight (a kill or respawn after the last finish is moot).
        let pending_kill = (next_kill < kills.len()).then(|| kills[next_kill]);
        let pending_revive = revives.front().map(|&(t, _)| t);
        // A respawn tying with a kill applies first: it was scheduled
        // by an earlier kill.
        let revive_first = match (pending_revive, pending_kill) {
            (Some(r), Some(k)) => r <= k,
            (Some(_), None) => true,
            _ => false,
        };
        let next_admin = if revive_first {
            pending_revive
        } else {
            pending_kill
        };
        let admin_due = match (next_admin, next_finish) {
            (Some(a), Some(t)) => a <= t,
            _ => false,
        };
        if admin_due {
            if revive_first {
                let (t, w) = revives
                    .pop_front()
                    .expect("revive_first implies a pending revive");
                now = now.max(t);
                alive[w] = true;
                alive_count += 1;
                worker_respawns += 1;
                continue;
            }
            now = now.max(kills[next_kill]);
            next_kill += 1;
            if alive_count <= 1 {
                continue; // keep one survivor: skip, not starve
            }
            // Adversarial victim: the alive worker whose running task
            // finishes last (most in-flight work lost); an idle alive
            // worker (highest index) if none is busy.
            let victim = (0..cfg.processors)
                .filter(|&w| alive[w])
                .max_by(|&a, &b| {
                    let fa = running[a].map(|r| r.finish).unwrap_or(f64::NEG_INFINITY);
                    let fb = running[b].map(|r| r.finish).unwrap_or(f64::NEG_INFINITY);
                    fa.partial_cmp(&fb).expect("finite times").then(a.cmp(&b))
                })
                .expect("alive_count > 1 implies an alive worker");
            alive[victim] = false;
            alive_count -= 1;
            worker_failures += 1;
            if let Some(r) = running[victim].take() {
                // The partial execution is thrown away; re-execute from
                // scratch on a survivor. Bumping the node's epoch
                // tombstones the stale finish event still in the heap.
                wasted_ns += now - r.start;
                busy_ns += now - r.start;
                epoch[r.node as usize] = r.epoch + 1;
                reexecuted_tasks += 1;
                compute_tasks -= 1; // re-counted when re-dispatched
                ready.push_front(r.node);
            }
            if let SimRecovery::Respawn { delay_ns } = recovery {
                revives.push_back((now + delay_ns, victim));
            }
            continue;
        }

        let Some(Reverse(ev)) = events.pop() else {
            break;
        };
        if ev.epoch != epoch[ev.node as usize] {
            continue;
        }
        now = ev.time;
        makespan = makespan.max(now);
        if let Some(w) = ev.worker {
            let r = running[w].take().expect("finish event for an idle worker");
            debug_assert_eq!(r.node, ev.node);
            busy_ns += r.finish - r.start;
        }
        executed += 1;
        for &s in graph.successors(ev.node) {
            in_deg[s as usize] -= 1;
            if in_deg[s as usize] == 0 {
                ready.push_back(s);
            }
        }
    }
    assert!(ready.is_empty(), "scheduler stalled with ready tasks");
    assert_eq!(
        executed,
        graph.len(),
        "every node must complete exactly once"
    );
    SimResult {
        makespan_ns: makespan,
        busy_ns,
        processors: cfg.processors,
        compute_tasks,
        utilization: if makespan > 0.0 {
            busy_ns / (makespan * cfg.processors as f64)
        } else {
            0.0
        },
        wasted_ns,
        reexecuted_tasks,
        worker_failures,
        worker_respawns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use recdp_taskgraph::{GraphBuilder, TaskKind};

    fn cfg(p: usize) -> SimConfig {
        SimConfig {
            processors: p,
            ns_per_flop: 1.0,
            per_task_ns: 0.0,
            join_ns: 0.0,
            policy: QueuePolicy::Fifo,
        }
    }

    fn independent(n: usize, w: f64) -> recdp_taskgraph::TaskGraph {
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            b.add_node(TaskKind::Tile, w);
        }
        b.build()
    }

    #[test]
    fn no_kills_matches_plain_engine() {
        use recdp_taskgraph::{dataflow, ge_kernel_flops};
        let g = dataflow::ge(8, &ge_kernel_flops(8));
        for p in [1, 3, 16] {
            let a = simulate(&g, &cfg(p));
            let b = simulate_with_failures(&g, &cfg(p), &[]);
            assert!((a.makespan_ns - b.makespan_ns).abs() < 1e-9, "p = {p}");
            assert_eq!(b.worker_failures, 0);
            assert_eq!(b.reexecuted_tasks, 0);
            assert_eq!(b.wasted_ns, 0.0);
        }
    }

    #[test]
    fn kill_mid_task_reexecutes_and_degrades() {
        // 2 workers, 2 tasks of 10ns; kill one worker at t = 4.
        let g = independent(2, 10.0);
        let r = simulate_with_failures(&g, &cfg(2), &[4]);
        assert_eq!(r.worker_failures, 1);
        assert_eq!(r.reexecuted_tasks, 1);
        assert!((r.wasted_ns - 4.0).abs() < 1e-9, "{}", r.wasted_ns);
        // Survivor runs its own task (0..10) then the re-executed one
        // (10..20).
        assert!((r.makespan_ns - 20.0).abs() < 1e-9, "{}", r.makespan_ns);
        // Busy time: 10 + 10 completed + 4 wasted.
        assert!((r.busy_ns - 24.0).abs() < 1e-9, "{}", r.busy_ns);
    }

    #[test]
    fn last_worker_is_never_killed() {
        let g = independent(4, 5.0);
        let r = simulate_with_failures(&g, &cfg(2), &[1, 2, 3]);
        // Only one kill can apply; the rest are skipped.
        assert_eq!(r.worker_failures, 1);
        // The survivor serialises all four tasks: node0 finishes at 5,
        // then the re-executed node1 and the remaining two.
        assert!((r.makespan_ns - 20.0).abs() < 1e-9, "{}", r.makespan_ns);
        // All four tasks still complete.
        assert_eq!(r.compute_tasks, 4);
    }

    #[test]
    fn kill_after_completion_is_ignored() {
        let g = independent(2, 3.0);
        let r = simulate_with_failures(&g, &cfg(2), &[1_000_000]);
        assert_eq!(r.worker_failures, 0);
        assert!((r.makespan_ns - 3.0).abs() < 1e-9);
    }

    #[test]
    fn idle_worker_kill_reduces_capacity() {
        // 4 tasks of 10ns on 3 workers; kill at t=0 hits a busy worker
        // (adversarial), then the survivors finish on 2 workers.
        let g = independent(4, 10.0);
        let r = simulate_with_failures(&g, &cfg(3), &[0]);
        assert_eq!(r.worker_failures, 1);
        // 2 workers, 4 tasks (one re-executed at zero progress):
        // makespan 2 rounds of 10ns.
        assert!((r.makespan_ns - 20.0).abs() < 1e-9, "{}", r.makespan_ns);
        assert!((r.wasted_ns - 0.0).abs() < 1e-9);
    }

    #[test]
    fn respawn_restores_capacity() {
        // 6 tasks of 10ns on 3 workers; kill at t=4, replacement live at
        // t=6. Degrade serialises the tail on 2 workers (makespan 30);
        // respawn recovers the third slot and finishes at 26.
        let g = independent(6, 10.0);
        let degrade = simulate_with_recovery(&g, &cfg(3), &[4], SimRecovery::Degrade);
        assert!((degrade.makespan_ns - 30.0).abs() < 1e-9, "{degrade:?}");
        assert_eq!(degrade.worker_respawns, 0);
        let respawn =
            simulate_with_recovery(&g, &cfg(3), &[4], SimRecovery::Respawn { delay_ns: 2.0 });
        assert_eq!(respawn.worker_failures, 1);
        assert_eq!(respawn.worker_respawns, 1);
        assert_eq!(respawn.reexecuted_tasks, 1);
        assert!((respawn.wasted_ns - 4.0).abs() < 1e-9, "{respawn:?}");
        assert!((respawn.makespan_ns - 26.0).abs() < 1e-9, "{respawn:?}");
        // All six tasks complete under both modes.
        assert_eq!(degrade.compute_tasks, 6);
        assert_eq!(respawn.compute_tasks, 6);
    }

    #[test]
    fn respawned_worker_can_be_killed_again() {
        // Two kills with an instant respawn: the replacement slot is a
        // legitimate second victim, and the pool ends at full width.
        let g = independent(6, 10.0);
        let r =
            simulate_with_recovery(&g, &cfg(2), &[2, 4], SimRecovery::Respawn { delay_ns: 0.0 });
        assert_eq!(r.worker_failures, 2);
        assert_eq!(r.worker_respawns, 2);
        assert_eq!(r.compute_tasks, 6);
    }

    #[test]
    fn degrade_mode_matches_the_original_signature() {
        use recdp_taskgraph::{dataflow, ge_kernel_flops};
        let g = dataflow::ge(16, &ge_kernel_flops(8));
        let kills = [1_000, 2_000, 3_000];
        let a = simulate_with_failures(&g, &cfg(8), &kills);
        let b = simulate_with_recovery(&g, &cfg(8), &kills, SimRecovery::Degrade);
        assert_eq!(a, b);
    }

    #[test]
    fn respawn_never_beats_failure_free_and_never_loses_to_degrade() {
        use recdp_taskgraph::{dataflow, ge_kernel_flops};
        let g = dataflow::ge(16, &ge_kernel_flops(8));
        let kills = [1_000, 5_000];
        let base = simulate_with_failures(&g, &cfg(8), &[]);
        let respawn = simulate_with_recovery(
            &g,
            &cfg(8),
            &kills,
            SimRecovery::Respawn { delay_ns: 500.0 },
        );
        let degrade = simulate_with_recovery(&g, &cfg(8), &kills, SimRecovery::Degrade);
        assert!(respawn.makespan_ns >= base.makespan_ns - 1e-9);
        assert!(degrade.makespan_ns >= respawn.makespan_ns - 1e-9);
    }

    #[test]
    fn degradation_is_monotone_in_kills() {
        use recdp_taskgraph::{dataflow, ge_kernel_flops};
        let g = dataflow::ge(16, &ge_kernel_flops(8));
        let base = simulate_with_failures(&g, &cfg(8), &[]);
        let one = simulate_with_failures(&g, &cfg(8), &[1_000]);
        let many = simulate_with_failures(&g, &cfg(8), &[1_000, 2_000, 3_000, 4_000]);
        // Failures never beat the failure-free run (capacity only drops
        // and re-execution only adds work).
        assert!(one.makespan_ns >= base.makespan_ns - 1e-9);
        assert!(many.makespan_ns >= base.makespan_ns - 1e-9);
        assert_eq!(many.worker_failures, 4);
        assert!(many.wasted_ns >= 0.0);
    }
}
