//! Fail-stop worker failures for the discrete-event engine.
//!
//! [`simulate_with_failures`] replays a task DAG like
//! [`crate::simulate`], but kills one worker at each requested time: the
//! task running on the victim is lost mid-flight and re-executes from
//! scratch on a surviving worker (fail-stop with work-conserving
//! re-execution — the model behind graceful-degradation makespan
//! curves). The victim is chosen adversarially: the alive worker whose
//! current task would finish last, maximising the work thrown away.
//!
//! One survivor is always kept (a kill that would take the last alive
//! worker is skipped), so every run completes and the makespan measures
//! degradation, not starvation.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use recdp_taskgraph::TaskGraph;

use crate::engine::{QueuePolicy, SimConfig};
use crate::result::SimResult;

/// Finish event, ordered for a min-heap. `worker` is `None` for sync
/// nodes (which occupy no worker and cannot be killed); `epoch` guards
/// against stale events for re-executed tasks.
#[derive(PartialEq)]
struct Finish {
    time: f64,
    node: u32,
    worker: Option<usize>,
    epoch: u32,
}

impl Eq for Finish {}

impl PartialOrd for Finish {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Finish {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .partial_cmp(&other.time)
            .expect("finite times")
            .then(self.node.cmp(&other.node))
            .then(self.epoch.cmp(&other.epoch))
    }
}

#[derive(Clone, Copy)]
struct Running {
    node: u32,
    start: f64,
    finish: f64,
    epoch: u32,
}

/// Simulates `graph` under greedy list scheduling with one fail-stop
/// worker failure per entry of `kill_times_ns` (ascending order not
/// required; times are sorted internally). Returns the usual
/// [`SimResult`] with the resilience fields populated: `wasted_ns`
/// (partial executions lost), `reexecuted_tasks`, and `worker_failures`
/// (kills actually applied — a kill arriving after the run finished, or
/// when only one worker survives, is skipped).
pub fn simulate_with_failures(
    graph: &TaskGraph,
    cfg: &SimConfig,
    kill_times_ns: &[u64],
) -> SimResult {
    assert!(cfg.processors > 0, "need at least one processor");
    let mut kills: Vec<f64> = kill_times_ns.iter().map(|&t| t as f64).collect();
    kills.sort_by(|a, b| a.partial_cmp(b).expect("finite kill times"));
    let mut next_kill = 0usize;

    let mut in_deg = graph.in_degrees();
    let mut ready: VecDeque<u32> = graph.roots().into();
    let mut events: BinaryHeap<Reverse<Finish>> = BinaryHeap::new();
    // Per-node execution epoch: a Finish event whose epoch is stale
    // belongs to an execution killed earlier and is ignored.
    let mut epoch: Vec<u32> = vec![0; graph.len()];
    let mut alive: Vec<bool> = vec![true; cfg.processors];
    let mut running: Vec<Option<Running>> = vec![None; cfg.processors];
    let mut alive_count = cfg.processors;

    let mut now = 0.0f64;
    let mut makespan = 0.0f64;
    let mut busy_ns = 0.0f64;
    let mut wasted_ns = 0.0f64;
    let mut compute_tasks = 0usize;
    let mut reexecuted_tasks = 0usize;
    let mut worker_failures = 0usize;
    let mut executed = 0usize;

    loop {
        // Dispatch everything we can at the current instant.
        while let Some(&node) = match cfg.policy {
            QueuePolicy::Fifo => ready.front(),
            QueuePolicy::Lifo => ready.back(),
        } {
            let kind = graph.kind(node);
            if kind.is_compute() {
                let Some(w) = (0..cfg.processors).find(|&w| alive[w] && running[w].is_none())
                else {
                    break;
                };
                let d = cfg.duration(kind, graph.weight(node));
                compute_tasks += 1;
                running[w] = Some(Running {
                    node,
                    start: now,
                    finish: now + d,
                    epoch: epoch[node as usize],
                });
                events.push(Reverse(Finish {
                    time: now + d,
                    node,
                    worker: Some(w),
                    epoch: epoch[node as usize],
                }));
            } else {
                let d = cfg.duration(kind, 0.0);
                events.push(Reverse(Finish {
                    time: now + d,
                    node,
                    worker: None,
                    epoch: epoch[node as usize],
                }));
            }
            match cfg.policy {
                QueuePolicy::Fifo => ready.pop_front(),
                QueuePolicy::Lifo => ready.pop_back(),
            };
        }

        // Next finish event, skipping tombstones of killed executions.
        let next_finish = loop {
            match events.peek() {
                Some(Reverse(ev)) if ev.epoch != epoch[ev.node as usize] => {
                    events.pop();
                }
                Some(Reverse(ev)) => break Some(ev.time),
                None => break None,
            }
        };

        // Interleave kills with finishes in time order. A kill is only
        // meaningful while work remains in flight.
        let kill_due = next_kill < kills.len()
            && match next_finish {
                Some(t) => kills[next_kill] <= t,
                None => false,
            };
        if kill_due {
            now = now.max(kills[next_kill]);
            next_kill += 1;
            if alive_count <= 1 {
                continue; // keep one survivor: skip, not starve
            }
            // Adversarial victim: the alive worker whose running task
            // finishes last (most in-flight work lost); an idle alive
            // worker (highest index) if none is busy.
            let victim = (0..cfg.processors)
                .filter(|&w| alive[w])
                .max_by(|&a, &b| {
                    let fa = running[a].map(|r| r.finish).unwrap_or(f64::NEG_INFINITY);
                    let fb = running[b].map(|r| r.finish).unwrap_or(f64::NEG_INFINITY);
                    fa.partial_cmp(&fb).expect("finite times").then(a.cmp(&b))
                })
                .expect("alive_count > 1 implies an alive worker");
            alive[victim] = false;
            alive_count -= 1;
            worker_failures += 1;
            if let Some(r) = running[victim].take() {
                // The partial execution is thrown away; re-execute from
                // scratch on a survivor. Bumping the node's epoch
                // tombstones the stale finish event still in the heap.
                wasted_ns += now - r.start;
                busy_ns += now - r.start;
                epoch[r.node as usize] = r.epoch + 1;
                reexecuted_tasks += 1;
                compute_tasks -= 1; // re-counted when re-dispatched
                ready.push_front(r.node);
            }
            continue;
        }

        let Some(Reverse(ev)) = events.pop() else {
            break;
        };
        if ev.epoch != epoch[ev.node as usize] {
            continue;
        }
        now = ev.time;
        makespan = makespan.max(now);
        if let Some(w) = ev.worker {
            let r = running[w].take().expect("finish event for an idle worker");
            debug_assert_eq!(r.node, ev.node);
            busy_ns += r.finish - r.start;
        }
        executed += 1;
        for &s in graph.successors(ev.node) {
            in_deg[s as usize] -= 1;
            if in_deg[s as usize] == 0 {
                ready.push_back(s);
            }
        }
    }
    assert!(ready.is_empty(), "scheduler stalled with ready tasks");
    assert_eq!(
        executed,
        graph.len(),
        "every node must complete exactly once"
    );
    SimResult {
        makespan_ns: makespan,
        busy_ns,
        processors: cfg.processors,
        compute_tasks,
        utilization: if makespan > 0.0 {
            busy_ns / (makespan * cfg.processors as f64)
        } else {
            0.0
        },
        wasted_ns,
        reexecuted_tasks,
        worker_failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use recdp_taskgraph::{GraphBuilder, TaskKind};

    fn cfg(p: usize) -> SimConfig {
        SimConfig {
            processors: p,
            ns_per_flop: 1.0,
            per_task_ns: 0.0,
            join_ns: 0.0,
            policy: QueuePolicy::Fifo,
        }
    }

    fn independent(n: usize, w: f64) -> recdp_taskgraph::TaskGraph {
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            b.add_node(TaskKind::Tile, w);
        }
        b.build()
    }

    #[test]
    fn no_kills_matches_plain_engine() {
        use recdp_taskgraph::{dataflow, ge_kernel_flops};
        let g = dataflow::ge(8, &ge_kernel_flops(8));
        for p in [1, 3, 16] {
            let a = simulate(&g, &cfg(p));
            let b = simulate_with_failures(&g, &cfg(p), &[]);
            assert!((a.makespan_ns - b.makespan_ns).abs() < 1e-9, "p = {p}");
            assert_eq!(b.worker_failures, 0);
            assert_eq!(b.reexecuted_tasks, 0);
            assert_eq!(b.wasted_ns, 0.0);
        }
    }

    #[test]
    fn kill_mid_task_reexecutes_and_degrades() {
        // 2 workers, 2 tasks of 10ns; kill one worker at t = 4.
        let g = independent(2, 10.0);
        let r = simulate_with_failures(&g, &cfg(2), &[4]);
        assert_eq!(r.worker_failures, 1);
        assert_eq!(r.reexecuted_tasks, 1);
        assert!((r.wasted_ns - 4.0).abs() < 1e-9, "{}", r.wasted_ns);
        // Survivor runs its own task (0..10) then the re-executed one
        // (10..20).
        assert!((r.makespan_ns - 20.0).abs() < 1e-9, "{}", r.makespan_ns);
        // Busy time: 10 + 10 completed + 4 wasted.
        assert!((r.busy_ns - 24.0).abs() < 1e-9, "{}", r.busy_ns);
    }

    #[test]
    fn last_worker_is_never_killed() {
        let g = independent(4, 5.0);
        let r = simulate_with_failures(&g, &cfg(2), &[1, 2, 3]);
        // Only one kill can apply; the rest are skipped.
        assert_eq!(r.worker_failures, 1);
        // The survivor serialises all four tasks: node0 finishes at 5,
        // then the re-executed node1 and the remaining two.
        assert!((r.makespan_ns - 20.0).abs() < 1e-9, "{}", r.makespan_ns);
        // All four tasks still complete.
        assert_eq!(r.compute_tasks, 4);
    }

    #[test]
    fn kill_after_completion_is_ignored() {
        let g = independent(2, 3.0);
        let r = simulate_with_failures(&g, &cfg(2), &[1_000_000]);
        assert_eq!(r.worker_failures, 0);
        assert!((r.makespan_ns - 3.0).abs() < 1e-9);
    }

    #[test]
    fn idle_worker_kill_reduces_capacity() {
        // 4 tasks of 10ns on 3 workers; kill at t=0 hits a busy worker
        // (adversarial), then the survivors finish on 2 workers.
        let g = independent(4, 10.0);
        let r = simulate_with_failures(&g, &cfg(3), &[0]);
        assert_eq!(r.worker_failures, 1);
        // 2 workers, 4 tasks (one re-executed at zero progress):
        // makespan 2 rounds of 10ns.
        assert!((r.makespan_ns - 20.0).abs() < 1e-9, "{}", r.makespan_ns);
        assert!((r.wasted_ns - 0.0).abs() < 1e-9);
    }

    #[test]
    fn degradation_is_monotone_in_kills() {
        use recdp_taskgraph::{dataflow, ge_kernel_flops};
        let g = dataflow::ge(16, &ge_kernel_flops(8));
        let base = simulate_with_failures(&g, &cfg(8), &[]);
        let one = simulate_with_failures(&g, &cfg(8), &[1_000]);
        let many = simulate_with_failures(&g, &cfg(8), &[1_000, 2_000, 3_000, 4_000]);
        // Failures never beat the failure-free run (capacity only drops
        // and re-execution only adds work).
        assert!(one.makespan_ns >= base.makespan_ns - 1e-9);
        assert!(many.makespan_ns >= base.makespan_ns - 1e-9);
        assert_eq!(many.worker_failures, 4);
        assert!(many.wasted_ns >= 0.0);
    }
}
