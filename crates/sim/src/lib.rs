//! `recdp-sim`: a discrete-event simulator of task-parallel execution.
//!
//! This is the substitution for the paper's 64-core EPYC and 192-core
//! Skylake testbeds (this repo is built and validated on a single-core
//! host): it replays a task DAG from `recdp-taskgraph` under greedy list
//! scheduling on `P` simulated workers, with per-task costs assembled
//! from
//!
//! * the machine's compute throughput ([`recdp_machine::CostParams`]),
//! * the capacity-aware cache-miss expectation of `recdp-analytical`
//!   weighted by each level's miss penalty, and
//! * the per-paradigm software overheads
//!   ([`recdp_machine::ParadigmOverheads`]) — spawn/dispatch cost, join
//!   cost (fork-join), abort-and-retry requeues (Native-CnC), and the
//!   pre-declaration pass (Manual-CnC).
//!
//! Because the DAGs are exact and the costs calibrated, the *shape* of
//! the paper's figures — who wins at which problem size, base size and
//! core count — is reproduced even though absolute numbers differ from
//! the authors' hardware.

#![warn(missing_docs)]

pub mod engine;
pub mod failures;
pub mod overhead;
pub mod result;

pub use engine::{simulate, simulate_with_timeline, QueuePolicy, SimConfig};
pub use failures::{simulate_with_failures, simulate_with_recovery, SimRecovery};
pub use overhead::{config_for, Workload};
pub use result::SimResult;
