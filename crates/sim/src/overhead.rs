//! Assembling a [`SimConfig`] from a machine model, a paradigm's
//! overheads and a workload's per-task memory behaviour.

use recdp_analytical::capacity_aware_misses_per_task;
use recdp_machine::{MachineConfig, ParadigmOverheads};

use crate::engine::SimConfig;

/// Which benchmark's memory behaviour to model (fixes the flops and
/// misses of one base-case task).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Gaussian Elimination: D-kernel with `3 m^3` flops per task and
    /// GE's capacity-sensitive reuse pattern.
    Ge,
    /// Floyd-Warshall: same access pattern as GE (per the paper) with
    /// `2 m^3` flop tasks.
    Fw,
    /// Smith-Waterman: single-pass `4 m^2` flop tiles with streaming
    /// misses only.
    Sw,
    /// Matrix-chain parenthesization: gap-dependent `~5 g m^3` flop
    /// tiles; the normalising task is a gap-1 tile. Its row/column
    /// segment sweeps reuse operands like the GE/FW kernels, so it
    /// shares their capacity-aware miss model.
    Paren,
}

impl Workload {
    /// Flops of the heaviest (normalising) base-case kernel.
    fn task_flops(self, m: usize) -> f64 {
        let m = m as f64;
        match self {
            Workload::Ge => 3.0 * m * m * m,
            Workload::Fw => 2.0 * m * m * m,
            Workload::Sw => 4.0 * m * m,
            Workload::Paren => 5.0 * m * m * m,
        }
    }

    /// Expected misses of one base-case task at one cache level.
    fn task_misses(self, m: usize, level: &recdp_machine::CacheLevel, line: usize) -> f64 {
        match self {
            Workload::Ge | Workload::Fw | Workload::Paren => {
                capacity_aware_misses_per_task(m, level, line)
            }
            Workload::Sw => {
                // One streaming pass over the m x m tile plus boundary
                // rows/columns from the three neighbours.
                let rows = m as f64 * m.div_ceil(line) as f64;
                rows + 3.0 * m as f64
            }
        }
    }
}

/// Builds the effective per-flop and per-task costs for simulating
/// `workload` with base size `m` under `paradigm` on `machine`, running
/// on `processors` workers (usually `machine.total_cores()`).
pub fn config_for(
    machine: &MachineConfig,
    paradigm: &ParadigmOverheads,
    workload: Workload,
    m: usize,
    processors: usize,
) -> SimConfig {
    let flops = workload.task_flops(m);
    let line = machine.caches.line_doubles();
    // Memory time per task: misses at each level times that level's
    // penalty, discounted by how much of the streaming prefetch benefit
    // this paradigm preserves (the paper: data-flow execution defeats the
    // prefetcher).
    let discount = 1.0 - machine.cost.prefetch_discount * paradigm.prefetch_efficiency;
    let miss_ns: f64 = machine
        .caches
        .levels
        .iter()
        .map(|lv| workload.task_misses(m, lv, line) * lv.miss_penalty_ns * discount)
        .sum();
    let compute_ns = machine.cost.compute_ns(flops);
    SimConfig {
        processors,
        ns_per_flop: (compute_ns + miss_ns) / flops,
        per_task_ns: paradigm.per_task_ns(),
        join_ns: paradigm.join_ns,
        policy: crate::engine::QueuePolicy::Fifo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recdp_machine::{epyc64, skylake192};

    #[test]
    fn per_flop_cost_decreases_when_tile_fits() {
        // A 64-tile (3 * 32 KiB working set) enjoys far more reuse than a
        // 2048-tile (96 MiB), so its effective ns/flop is lower.
        let m64 = config_for(
            &skylake192(),
            &ParadigmOverheads::fork_join(),
            Workload::Ge,
            128,
            192,
        );
        let m2048 = config_for(
            &skylake192(),
            &ParadigmOverheads::fork_join(),
            Workload::Ge,
            2048,
            192,
        );
        assert!(m64.ns_per_flop < m2048.ns_per_flop);
    }

    #[test]
    fn cnc_pays_more_per_task_than_openmp() {
        let fj = config_for(
            &epyc64(),
            &ParadigmOverheads::fork_join(),
            Workload::Ge,
            128,
            64,
        );
        let cnc = config_for(
            &epyc64(),
            &ParadigmOverheads::cnc_native(),
            Workload::Ge,
            128,
            64,
        );
        let man = config_for(
            &epyc64(),
            &ParadigmOverheads::cnc_manual(),
            Workload::Ge,
            128,
            64,
        );
        assert!(fj.per_task_ns < cnc.per_task_ns);
        assert!(cnc.per_task_ns < man.per_task_ns);
        assert!(fj.join_ns > 0.0 && cnc.join_ns == 0.0);
    }

    #[test]
    fn cnc_loses_more_prefetch_benefit() {
        // Same tile, same machine: the data-flow paradigm's effective
        // memory cost is higher because it defeats the prefetcher.
        let fj = config_for(
            &epyc64(),
            &ParadigmOverheads::fork_join(),
            Workload::Ge,
            512,
            64,
        );
        let cnc = config_for(
            &epyc64(),
            &ParadigmOverheads::cnc_native(),
            Workload::Ge,
            512,
            64,
        );
        assert!(cnc.ns_per_flop > fj.ns_per_flop);
    }

    #[test]
    fn sw_tasks_are_lighter_than_ge() {
        let sw = config_for(
            &epyc64(),
            &ParadigmOverheads::fork_join(),
            Workload::Sw,
            256,
            64,
        );
        let ge = config_for(
            &epyc64(),
            &ParadigmOverheads::fork_join(),
            Workload::Ge,
            256,
            64,
        );
        // Per *task* (m^2 vs m^3 flops), SW is far lighter.
        let sw_task = sw.ns_per_flop * Workload::Sw.task_flops(256);
        let ge_task = ge.ns_per_flop * Workload::Ge.task_flops(256);
        assert!(sw_task < ge_task / 10.0);
    }
}
