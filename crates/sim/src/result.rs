//! Simulation outputs.

/// The outcome of one simulated execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Wall-clock makespan in nanoseconds.
    pub makespan_ns: f64,
    /// Total worker-busy nanoseconds (sum of compute-task durations).
    pub busy_ns: f64,
    /// Workers simulated.
    pub processors: usize,
    /// Compute tasks executed.
    pub compute_tasks: usize,
    /// `busy / (makespan * P)` in [0, 1]: the resource-utilisation figure
    /// behind the paper's "threads becoming idle" argument.
    pub utilization: f64,
    /// Worker-busy nanoseconds thrown away by fail-stop worker failures
    /// (partial executions lost at kill time). Zero in failure-free runs.
    pub wasted_ns: f64,
    /// Compute-task executions repeated because their worker was killed
    /// mid-task. Zero in failure-free runs.
    pub reexecuted_tasks: usize,
    /// Workers killed during the run (fail-stop events actually applied).
    pub worker_failures: usize,
    /// Killed workers brought back by the respawn recovery mode. Zero
    /// under degrade recovery and in failure-free runs.
    pub worker_respawns: usize,
}

impl SimResult {
    /// Makespan in seconds.
    pub fn seconds(&self) -> f64 {
        self.makespan_ns * 1e-9
    }

    /// Speedup over a given single-worker makespan.
    pub fn speedup_over(&self, serial_ns: f64) -> f64 {
        assert!(self.makespan_ns > 0.0);
        serial_ns / self.makespan_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let r = SimResult {
            makespan_ns: 2e9,
            busy_ns: 1e9,
            processors: 4,
            compute_tasks: 7,
            utilization: 0.125,
            wasted_ns: 0.0,
            reexecuted_tasks: 0,
            worker_failures: 0,
            worker_respawns: 0,
        };
        assert!((r.seconds() - 2.0).abs() < 1e-12);
        assert!((r.speedup_over(8e9) - 4.0).abs() < 1e-12);
    }
}
