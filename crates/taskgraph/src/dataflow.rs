//! Data-flow (true-dependency) tile DAGs — what the CnC implementations
//! expose to the scheduler.
//!
//! Tile coordinates follow the paper's Listing 5: a task updates tile
//! `(i, j)` at pivot step `k`. The dependencies are exactly the blocking
//! `get`s of the CnC steps:
//!
//! * GE (and FW): `A(k) <- D(k,k,k-1)`; `B(k,j) <- A(k), D(k,j,k-1)`;
//!   `C(i,k) <- A(k), D(i,k,k-1)`;
//!   `D(i,j,k) <- B(k,j), C(i,k), D(i,j,k-1)` (the write-write chain is
//!   the `k-1` edge).
//! * SW: tile `(i,j)` reads `(i-1,j)`, `(i,j-1)` (the diagonal
//!   dependency is implied transitively).

use crate::graph::{GraphBuilder, NodeId, TaskGraph, TaskKind};
use crate::KernelFlops;

/// Index helper for the triangular GE task space: tasks `(k, i, j)` with
/// `i >= k`, `j >= k`, laid out k-major.
pub struct GeIndex {
    t: usize,
    offsets: Vec<u64>,
}

impl GeIndex {
    /// Builds the index for `t` tiles per side.
    pub fn new(t: usize) -> Self {
        let mut offsets = Vec::with_capacity(t + 1);
        let mut acc = 0u64;
        for k in 0..=t {
            offsets.push(acc);
            if k < t {
                let rem = (t - k) as u64;
                acc += rem * rem;
            }
        }
        Self { t, offsets }
    }

    /// Total number of tasks.
    pub fn len(&self) -> u64 {
        self.offsets[self.t]
    }

    /// True if the index covers no tasks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Node id of task `(k, i, j)`; requires `i >= k && j >= k`.
    pub fn id(&self, k: usize, i: usize, j: usize) -> NodeId {
        debug_assert!(k < self.t && i >= k && i < self.t && j >= k && j < self.t);
        let rem = (self.t - k) as u64;
        (self.offsets[k] + (i - k) as u64 * rem + (j - k) as u64) as NodeId
    }
}

/// GE data-flow DAG for `t` tiles per side with the given kernel weights.
pub fn ge(t: usize, flops: &KernelFlops) -> TaskGraph {
    assert!(t > 0);
    let index = GeIndex::new(t);
    let nodes = index.len() as usize;
    let mut b = GraphBuilder::with_capacity(nodes, nodes * 3);
    for k in 0..t {
        for i in k..t {
            for j in k..t {
                let kind = match (i == k, j == k) {
                    (true, true) => TaskKind::BaseA,
                    (true, false) => TaskKind::BaseB,
                    (false, true) => TaskKind::BaseC,
                    (false, false) => TaskKind::BaseD,
                };
                let id = b.add_node(kind, flops.weight(kind));
                debug_assert_eq!(id, index.id(k, i, j));
            }
        }
    }
    for k in 0..t {
        for i in k..t {
            for j in k..t {
                let me = index.id(k, i, j);
                // Write-write chain: the previous pivot step's update of
                // the same tile.
                if k > 0 {
                    b.add_edge(index.id(k - 1, i, j), me);
                }
                // Read dependencies of Listing 5.
                match (i == k, j == k) {
                    (true, true) => {}
                    (true, false) | (false, true) => {
                        b.add_edge(index.id(k, k, k), me);
                    }
                    (false, false) => {
                        b.add_edge(index.id(k, k, j), me); // B(k, j)
                        b.add_edge(index.id(k, i, k), me); // C(i, k)
                    }
                }
            }
        }
    }
    b.build()
}

/// FW-APSP data-flow DAG: like GE but every pivot step updates *all*
/// `t x t` tiles, giving `t^3` tasks.
pub fn fw(t: usize, flops: &KernelFlops) -> TaskGraph {
    assert!(t > 0);
    let id = |k: usize, i: usize, j: usize| (k * t * t + i * t + j) as NodeId;
    let nodes = t * t * t;
    let mut b = GraphBuilder::with_capacity(nodes, nodes * 3);
    for k in 0..t {
        for i in 0..t {
            for j in 0..t {
                let kind = match (i == k, j == k) {
                    (true, true) => TaskKind::BaseA,
                    (true, false) => TaskKind::BaseB,
                    (false, true) => TaskKind::BaseC,
                    (false, false) => TaskKind::BaseD,
                };
                b.add_node(kind, flops.weight(kind));
            }
        }
    }
    for k in 0..t {
        for i in 0..t {
            for j in 0..t {
                let me = id(k, i, j);
                if k > 0 {
                    b.add_edge(id(k - 1, i, j), me);
                }
                match (i == k, j == k) {
                    (true, true) => {}
                    (true, false) | (false, true) => b.add_edge(id(k, k, k), me),
                    (false, false) => {
                        b.add_edge(id(k, k, j), me);
                        b.add_edge(id(k, i, k), me);
                    }
                }
            }
        }
    }
    b.build()
}

/// SW data-flow DAG: the `t x t` wavefront.
pub fn sw(t: usize, flops: &KernelFlops) -> TaskGraph {
    assert!(t > 0);
    let id = |i: usize, j: usize| (i * t + j) as NodeId;
    let mut b = GraphBuilder::with_capacity(t * t, t * t * 2);
    for _ in 0..t {
        for _ in 0..t {
            b.add_node(TaskKind::Tile, flops.tile);
        }
    }
    for i in 0..t {
        for j in 0..t {
            if i > 0 {
                b.add_edge(id(i - 1, j), id(i, j));
            }
            if j > 0 {
                b.add_edge(id(i, j - 1), id(i, j));
            }
        }
    }
    b.build()
}

/// Index helper for the triangular parenthesization task space: tiles
/// `(i, j)` with `i <= j`, laid out row-major over the upper triangle.
pub struct ParenIndex {
    t: usize,
}

impl ParenIndex {
    /// Builds the index for `t` tiles per side.
    pub fn new(t: usize) -> Self {
        Self { t }
    }

    /// Total number of tasks: `t (t + 1) / 2`.
    pub fn len(&self) -> u64 {
        (self.t * (self.t + 1) / 2) as u64
    }

    /// True if the index covers no tasks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Node id of tile `(i, j)`; requires `i <= j < t`.
    pub fn id(&self, i: usize, j: usize) -> NodeId {
        debug_assert!(i <= j && j < self.t);
        // Rows above row i hold sum_{r < i} (t - r) = i (2t - i + 1) / 2
        // tiles.
        (i * (2 * self.t - i + 1) / 2 + (j - i)) as NodeId
    }
}

/// Parenthesization data-flow DAG: the upper-triangular tile space where
/// tile `(i, j)` reads its whole row segment `(i, i..j)` and column
/// segment `(i+1..=j, j)` — a dependency *list* that grows with the gap
/// `j - i` (the non-O(1)-dependency family), matching the blocking gets
/// of the CnC steps. Node weights are gap-dependent: `a` for diagonal
/// tiles, `(j - i) * d` otherwise (see
/// [`crate::paren_kernel_flops`]).
pub fn paren(t: usize, flops: &KernelFlops) -> TaskGraph {
    assert!(t > 0);
    let index = ParenIndex::new(t);
    let nodes = index.len() as usize;
    let mut b = GraphBuilder::with_capacity(nodes, nodes * t);
    for i in 0..t {
        for j in i..t {
            let (kind, w) = if i == j {
                (TaskKind::BaseA, flops.a)
            } else {
                (TaskKind::BaseB, (j - i) as f64 * flops.d)
            };
            let id = b.add_node(kind, w);
            debug_assert_eq!(id, index.id(i, j));
        }
    }
    for i in 0..t {
        for j in i + 1..t {
            let me = index.id(i, j);
            for k in i..j {
                b.add_edge(index.id(i, k), me); // row segment (split left)
            }
            for k in i + 1..=j {
                b.add_edge(index.id(k, j), me); // col segment (split right)
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::analyze;
    use crate::{fw_kernel_flops, ge_kernel_flops, paren_kernel_flops, sw_kernel_flops};

    #[test]
    fn ge_task_count_matches_formula() {
        for t in 1..=12usize {
            let g = ge(t, &ge_kernel_flops(8));
            let expected = t * (t + 1) * (2 * t + 1) / 6;
            assert_eq!(g.len(), expected, "t = {t}");
            assert_eq!(g.num_compute_nodes(), expected);
        }
    }

    #[test]
    fn ge_index_is_dense_and_ordered() {
        let idx = GeIndex::new(5);
        assert_eq!(idx.len(), 5 * 6 * 11 / 6);
        assert_eq!(idx.id(0, 0, 0), 0);
        assert_eq!(idx.id(0, 0, 1), 1);
        assert_eq!(idx.id(1, 1, 1), 25); // after the 25 tasks of k=0
    }

    #[test]
    fn fw_task_count_is_t_cubed() {
        for t in 1..=8usize {
            assert_eq!(fw(t, &fw_kernel_flops(8)).len(), t * t * t);
        }
    }

    #[test]
    fn sw_task_count_is_t_squared() {
        assert_eq!(sw(7, &sw_kernel_flops(8)).len(), 49);
    }

    #[test]
    fn sw_span_is_wavefront_diagonal() {
        // Span of the t x t wavefront with unit tiles = 2t - 1 tiles.
        let t = 9;
        let m = analyze(&sw(t, &sw_kernel_flops(1)));
        let per_tile = sw_kernel_flops(1).tile;
        assert!((m.span - (2 * t - 1) as f64 * per_tile).abs() < 1e-9);
        assert_eq!(m.critical_path_tasks, 2 * t - 1);
    }

    #[test]
    fn ge_span_is_linear_in_t() {
        // The GE data-flow critical path is A(0) B/C D A(1) ... -> ~3t
        // tasks, i.e. *linear* in t (the key contrast with fork-join).
        let f = ge_kernel_flops(1);
        let m8 = analyze(&ge(8, &f));
        let m16 = analyze(&ge(16, &f));
        let growth = m16.span / m8.span;
        assert!(
            growth > 1.8 && growth < 2.3,
            "span growth {growth} should be ~2x"
        );
        assert!(m16.critical_path_tasks <= 3 * 16 + 2);
    }

    #[test]
    fn ge_roots_single_a0() {
        let g = ge(4, &ge_kernel_flops(4));
        assert_eq!(g.roots(), vec![0], "only A(0) is initially ready");
    }

    #[test]
    fn paren_task_count_is_triangular() {
        for t in 1..=10usize {
            let g = paren(t, &paren_kernel_flops(8));
            assert_eq!(g.len(), t * (t + 1) / 2, "t = {t}");
        }
    }

    #[test]
    fn paren_roots_are_the_diagonal() {
        let t = 6;
        let g = paren(t, &paren_kernel_flops(4));
        let idx = ParenIndex::new(t);
        let roots = g.roots();
        assert_eq!(roots.len(), t, "every diagonal tile is initially ready");
        for i in 0..t {
            assert!(roots.contains(&idx.id(i, i)));
        }
    }

    #[test]
    fn paren_span_is_the_top_row_chain() {
        // The critical path is (0,0) -> (0,1) -> ... -> (0,t-1): each
        // top-row tile reads its left neighbour, and weights grow with
        // the gap, so no other chain is heavier.
        let t = 8;
        let f = paren_kernel_flops(1);
        let m = analyze(&paren(t, &f));
        let expected = f.a + (1..t).map(|g| g as f64 * f.d).sum::<f64>();
        assert!((m.span - expected).abs() < 1e-9, "span {}", m.span);
        assert_eq!(m.critical_path_tasks, t);
    }

    #[test]
    fn fw_parallelism_grows_quadratically() {
        let f = fw_kernel_flops(1);
        let p4 = analyze(&fw(4, &f)).parallelism;
        let p8 = analyze(&fw(8, &f)).parallelism;
        // work t^3, span ~t -> parallelism ~t^2: doubling t quadruples it.
        let ratio = p8 / p4;
        assert!(ratio > 3.0 && ratio < 5.0, "ratio {ratio}");
    }
}
