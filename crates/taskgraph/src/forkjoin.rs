//! Fork-join (series-parallel) DAGs of the recursive 2-way R-DP
//! algorithms, joins included.
//!
//! Each builder mirrors the recursive function structure of the
//! cache-oblivious algorithms (Fig. 2 for GE) exactly; every sequential
//! composition point — a `#pragma omp taskwait` in the paper's Listing 3
//! — becomes a zero-weight [`TaskKind::Sync`] node that all tasks of the
//! earlier stage feed and all tasks of the later stage read. Those sync
//! nodes *are* the artificial dependencies of Fig. 3: removing them (the
//! data-flow builders in [`crate::dataflow`]) shortens the span
//! asymptotically.

use crate::graph::{GraphBuilder, NodeId, TaskGraph, TaskKind};
use crate::KernelFlops;

/// A sub-DAG under construction: the nodes that begin it and the nodes
/// that end it.
#[derive(Debug, Clone)]
struct Block {
    entries: Vec<NodeId>,
    exits: Vec<NodeId>,
}

struct Fj<'a> {
    b: GraphBuilder,
    flops: &'a KernelFlops,
    joins: u64,
}

impl<'a> Fj<'a> {
    fn new(flops: &'a KernelFlops) -> Self {
        Self {
            b: GraphBuilder::new(),
            flops,
            joins: 0,
        }
    }

    fn leaf(&mut self, kind: TaskKind) -> Block {
        let id = self.b.add_node(kind, self.flops.weight(kind));
        Block {
            entries: vec![id],
            exits: vec![id],
        }
    }

    /// Sequential composition with a join: nothing in `second` may start
    /// before everything in `first` finished.
    fn seq(&mut self, first: Block, second: Block) -> Block {
        // Insert a Sync node unless direct edges are at least as cheap.
        if first.exits.len() * second.entries.len() <= first.exits.len() + second.entries.len() {
            for &x in &first.exits {
                for &e in &second.entries {
                    self.b.add_edge(x, e);
                }
            }
        } else {
            let sync = self.b.add_node(TaskKind::Sync, 0.0);
            self.joins += 1;
            for &x in &first.exits {
                self.b.add_edge(x, sync);
            }
            for &e in &second.entries {
                self.b.add_edge(sync, e);
            }
        }
        Block {
            entries: first.entries,
            exits: second.exits,
        }
    }

    /// Parallel composition (the forked tasks between two joins).
    fn par(&mut self, blocks: Vec<Block>) -> Block {
        let mut entries = Vec::new();
        let mut exits = Vec::new();
        for blk in blocks {
            entries.extend(blk.entries);
            exits.extend(blk.exits);
        }
        Block { entries, exits }
    }

    fn seq_chain(&mut self, stages: Vec<Block>) -> Block {
        let mut it = stages.into_iter();
        let mut acc = it.next().expect("at least one stage");
        for s in it {
            acc = self.seq(acc, s);
        }
        acc
    }
}

// ---------------------------------------------------------------------
// GE (Fig. 2 recursion).
// ---------------------------------------------------------------------

struct Ge<'a>(Fj<'a>);

impl Ge<'_> {
    /// A(d, s): full GE on the diagonal block of `s` tiles at offset `d`.
    fn a(&mut self, d: usize, s: usize) -> Block {
        if s == 1 {
            return self.0.leaf(TaskKind::BaseA);
        }
        let h = s / 2;
        let top = self.a(d, h);
        let b1 = self.bfun(d, d + h, h);
        let c1 = self.cfun(d + h, d, h);
        let bc = self.0.par(vec![b1, c1]);
        let dd = self.dfun(d + h, d + h, d, h);
        let bot = self.a(d + h, h);
        self.0.seq_chain(vec![top, bc, dd, bot])
    }

    /// B(k0, j0, s): row panels for pivots `[k0, k0+s)` and columns
    /// `[j0, j0+s)`.
    fn bfun(&mut self, k0: usize, j0: usize, s: usize) -> Block {
        if s == 1 {
            return self.0.leaf(TaskKind::BaseB);
        }
        let h = s / 2;
        let s1a = self.bfun(k0, j0, h);
        let s1b = self.bfun(k0, j0 + h, h);
        let s1 = self.0.par(vec![s1a, s1b]);
        let s2a = self.dfun(k0 + h, j0, k0, h);
        let s2b = self.dfun(k0 + h, j0 + h, k0, h);
        let s2 = self.0.par(vec![s2a, s2b]);
        let s3a = self.bfun(k0 + h, j0, h);
        let s3b = self.bfun(k0 + h, j0 + h, h);
        let s3 = self.0.par(vec![s3a, s3b]);
        self.0.seq_chain(vec![s1, s2, s3])
    }

    /// C(i0, k0, s): column panels, symmetric to B.
    fn cfun(&mut self, i0: usize, k0: usize, s: usize) -> Block {
        if s == 1 {
            return self.0.leaf(TaskKind::BaseC);
        }
        let h = s / 2;
        let s1a = self.cfun(i0, k0, h);
        let s1b = self.cfun(i0 + h, k0, h);
        let s1 = self.0.par(vec![s1a, s1b]);
        let s2a = self.dfun(i0, k0 + h, k0, h);
        let s2b = self.dfun(i0 + h, k0 + h, k0, h);
        let s2 = self.0.par(vec![s2a, s2b]);
        let s3a = self.cfun(i0, k0 + h, h);
        let s3b = self.cfun(i0 + h, k0 + h, h);
        let s3 = self.0.par(vec![s3a, s3b]);
        self.0.seq_chain(vec![s1, s2, s3])
    }

    /// D(i0, j0, k0, s): trailing update, matrix-multiply shaped — eight
    /// subcalls in two fully-parallel rounds split on the k range.
    fn dfun(&mut self, i0: usize, j0: usize, k0: usize, s: usize) -> Block {
        if s == 1 {
            return self.0.leaf(TaskKind::BaseD);
        }
        let h = s / 2;
        let round = |k: usize, me: &mut Self| {
            let q: Vec<Block> = [(i0, j0), (i0, j0 + h), (i0 + h, j0), (i0 + h, j0 + h)]
                .into_iter()
                .map(|(i, j)| me.dfun(i, j, k, h))
                .collect();
            me.0.par(q)
        };
        let r1 = round(k0, self);
        let r2 = round(k0 + h, self);
        self.0.seq(r1, r2)
    }
}

/// Fork-join DAG of R-DP GE on `t` tiles per side (`t` a power of two).
pub fn ge(t: usize, flops: &KernelFlops) -> TaskGraph {
    assert!(
        t.is_power_of_two(),
        "fork-join recursion needs a power-of-two tile count"
    );
    let mut ge = Ge(Fj::new(flops));
    let _ = ge.a(0, t);
    ge.0.b.build()
}

// ---------------------------------------------------------------------
// SW: quadrant recursion X00; (X01 || X10); X11.
// ---------------------------------------------------------------------

struct Sw<'a>(Fj<'a>);

impl Sw<'_> {
    fn s(&mut self, s: usize) -> Block {
        if s == 1 {
            return self.0.leaf(TaskKind::Tile);
        }
        let h = s / 2;
        let nw = self.s(h);
        let ne = self.s(h);
        let swq = self.s(h);
        let mid = self.0.par(vec![ne, swq]);
        let se = self.s(h);
        self.0.seq_chain(vec![nw, mid, se])
    }
}

/// Fork-join DAG of R-DP SW on `t` tiles per side (`t` a power of two).
/// The joins at each level are exactly the per-wavefront barriers the
/// paper blames for SW's fork-join slowdown.
pub fn sw(t: usize, flops: &KernelFlops) -> TaskGraph {
    assert!(t.is_power_of_two());
    let mut sw = Sw(Fj::new(flops));
    let _ = sw.s(t);
    sw.0.b.build()
}

// ---------------------------------------------------------------------
// FW-APSP: the Chowdhury-Ramachandran recursion; every kernel covers its
// whole region at every pivot, so each function makes 8 half-size calls.
// ---------------------------------------------------------------------

struct Fw<'a>(Fj<'a>);

impl Fw<'_> {
    fn a(&mut self, s: usize) -> Block {
        if s == 1 {
            return self.0.leaf(TaskKind::BaseA);
        }
        let h = s / 2;
        let a1 = self.a(h);
        let b1 = self.bfun(h);
        let c1 = self.cfun(h);
        let bc1 = self.0.par(vec![b1, c1]);
        let d1 = self.dfun(h);
        let a2 = self.a(h);
        let b2 = self.bfun(h);
        let c2 = self.cfun(h);
        let bc2 = self.0.par(vec![b2, c2]);
        let d2 = self.dfun(h);
        self.0.seq_chain(vec![a1, bc1, d1, a2, bc2, d2])
    }

    fn bfun(&mut self, s: usize) -> Block {
        if s == 1 {
            return self.0.leaf(TaskKind::BaseB);
        }
        let h = s / 2;
        let s1a = self.bfun(h);
        let s1b = self.bfun(h);
        let s1 = self.0.par(vec![s1a, s1b]);
        let s2a = self.dfun(h);
        let s2b = self.dfun(h);
        let s2 = self.0.par(vec![s2a, s2b]);
        let s3a = self.bfun(h);
        let s3b = self.bfun(h);
        let s3 = self.0.par(vec![s3a, s3b]);
        let s4a = self.dfun(h);
        let s4b = self.dfun(h);
        let s4 = self.0.par(vec![s4a, s4b]);
        self.0.seq_chain(vec![s1, s2, s3, s4])
    }

    fn cfun(&mut self, s: usize) -> Block {
        if s == 1 {
            return self.0.leaf(TaskKind::BaseC);
        }
        let h = s / 2;
        let s1a = self.cfun(h);
        let s1b = self.cfun(h);
        let s1 = self.0.par(vec![s1a, s1b]);
        let s2a = self.dfun(h);
        let s2b = self.dfun(h);
        let s2 = self.0.par(vec![s2a, s2b]);
        let s3a = self.cfun(h);
        let s3b = self.cfun(h);
        let s3 = self.0.par(vec![s3a, s3b]);
        let s4a = self.dfun(h);
        let s4b = self.dfun(h);
        let s4 = self.0.par(vec![s4a, s4b]);
        self.0.seq_chain(vec![s1, s2, s3, s4])
    }

    fn dfun(&mut self, s: usize) -> Block {
        if s == 1 {
            return self.0.leaf(TaskKind::BaseD);
        }
        let h = s / 2;
        let r1: Vec<Block> = (0..4).map(|_| self.dfun(h)).collect();
        let r1 = self.0.par(r1);
        let r2: Vec<Block> = (0..4).map(|_| self.dfun(h)).collect();
        let r2 = self.0.par(r2);
        self.0.seq(r1, r2)
    }
}

/// Fork-join DAG of R-DP FW-APSP on `t` tiles per side (power of two).
pub fn fw(t: usize, flops: &KernelFlops) -> TaskGraph {
    assert!(t.is_power_of_two());
    let mut fw = Fw(Fj::new(flops));
    let _ = fw.a(t);
    fw.0.b.build()
}

// ---------------------------------------------------------------------
// Parenthesization: triangle/square recursion over the upper-triangular
// tile space. A(d, s) = (A || A); B. B(r, c, s) = X21; (X11 || X22); X12.
// ---------------------------------------------------------------------

struct Paren<'a>(Fj<'a>);

impl Paren<'_> {
    /// Gap-dependent leaf weight (see [`crate::paren_kernel_flops`]).
    fn leaf(&mut self, kind: TaskKind, gap: usize) -> Block {
        let w = if gap == 0 {
            self.0.flops.a
        } else {
            gap as f64 * self.0.flops.d
        };
        let id = self.0.b.add_node(kind, w);
        Block {
            entries: vec![id],
            exits: vec![id],
        }
    }

    fn a(&mut self, d: usize, s: usize) -> Block {
        if s == 1 {
            return self.leaf(TaskKind::BaseA, 0);
        }
        let h = s / 2;
        let a1 = self.a(d, h);
        let a2 = self.a(d + h, h);
        let tri = self.0.par(vec![a1, a2]);
        let sq = self.bfun(d, d + h, h);
        self.0.seq(tri, sq)
    }

    fn bfun(&mut self, r: usize, c: usize, s: usize) -> Block {
        if s == 1 {
            return self.leaf(TaskKind::BaseB, c - r);
        }
        let h = s / 2;
        let x21 = self.bfun(r + h, c, h);
        let x11 = self.bfun(r, c, h);
        let x22 = self.bfun(r + h, c + h, h);
        let mid = self.0.par(vec![x11, x22]);
        let x12 = self.bfun(r, c + h, h);
        self.0.seq_chain(vec![x21, mid, x12])
    }
}

/// Fork-join DAG of R-DP parenthesization on `t` tiles per side (power
/// of two). The join after the two half triangles — and after each
/// quadrant stage of the square recursion — is an artificial barrier:
/// the true dependencies only order tiles along growing gaps.
pub fn paren(t: usize, flops: &KernelFlops) -> TaskGraph {
    assert!(
        t.is_power_of_two(),
        "fork-join recursion needs a power-of-two tile count"
    );
    let mut p = Paren(Fj::new(flops));
    let _ = p.a(0, t);
    p.0.b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::analyze;
    use crate::{dataflow, fw_kernel_flops, ge_kernel_flops, paren_kernel_flops, sw_kernel_flops};

    #[test]
    fn ge_compute_count_matches_dataflow() {
        for t in [1usize, 2, 4, 8, 16] {
            let fj = ge(t, &ge_kernel_flops(4));
            let df = dataflow::ge(t, &ge_kernel_flops(4));
            assert_eq!(
                fj.num_compute_nodes(),
                df.len(),
                "same base tasks in both models at t={t}"
            );
        }
    }

    #[test]
    fn sw_compute_count_is_t_squared() {
        for t in [1usize, 2, 8, 32] {
            assert_eq!(sw(t, &sw_kernel_flops(4)).num_compute_nodes(), t * t);
        }
    }

    #[test]
    fn fw_compute_count_is_t_cubed() {
        for t in [1usize, 2, 4, 8] {
            assert_eq!(fw(t, &fw_kernel_flops(4)).num_compute_nodes(), t * t * t);
        }
    }

    #[test]
    fn ge_work_identical_across_models() {
        let t = 8;
        let f = ge_kernel_flops(16);
        let fj = analyze(&ge(t, &f));
        let df = analyze(&dataflow::ge(t, &f));
        assert!((fj.work - df.work).abs() < 1e-6, "sync nodes are free");
    }

    #[test]
    fn joins_inflate_ge_span() {
        // The paper's core claim: at equal work, the fork-join span
        // exceeds the data-flow span, and the gap widens with t.
        let f = ge_kernel_flops(1);
        let mut prev_ratio = 0.0;
        for t in [4usize, 8, 16, 32] {
            let fj = analyze(&ge(t, &f));
            let df = analyze(&dataflow::ge(t, &f));
            let ratio = fj.span / df.span;
            assert!(
                ratio > 1.0,
                "t={t}: fork-join span must exceed data-flow span"
            );
            assert!(ratio >= prev_ratio * 0.99, "gap should widen with t");
            prev_ratio = ratio;
        }
        assert!(
            prev_ratio > 1.5,
            "at t=32 the artificial-dependency gap is substantial"
        );
    }

    #[test]
    fn joins_inflate_sw_span_asymptotically() {
        // Data-flow span: Theta(t) tiles; fork-join: Theta(t^1.585).
        let f = sw_kernel_flops(1);
        let t = 64;
        let fj = analyze(&sw(t, &f));
        let df = analyze(&dataflow::sw(t, &f));
        let tiles_fj = fj.span / f.tile;
        let tiles_df = df.span / f.tile;
        assert_eq!(tiles_df as usize, 2 * t - 1);
        // t^(log2 3) = 64^1.585 ~ 729.
        assert!(
            tiles_fj > 700.0,
            "fork-join SW span {tiles_fj} should be ~t^1.585"
        );
    }

    #[test]
    fn fw_span_gap() {
        let f = fw_kernel_flops(1);
        let t = 16;
        let fj = analyze(&fw(t, &f));
        let df = analyze(&dataflow::fw(t, &f));
        assert!(fj.span > df.span);
        assert!((fj.work - df.work).abs() < 1e-6);
    }

    #[test]
    fn paren_compute_count_and_work_match_dataflow() {
        for t in [1usize, 2, 4, 8, 16] {
            let f = paren_kernel_flops(4);
            let fj = paren(t, &f);
            let df = dataflow::paren(t, &f);
            assert_eq!(fj.num_compute_nodes(), df.len(), "t={t}");
            let (mfj, mdf) = (analyze(&fj), analyze(&df));
            assert!((mfj.work - mdf.work).abs() < 1e-6, "sync nodes are free");
        }
    }

    #[test]
    fn joins_inflate_paren_span() {
        let f = paren_kernel_flops(1);
        let t = 16;
        let fj = analyze(&paren(t, &f));
        let df = analyze(&dataflow::paren(t, &f));
        assert!(
            fj.span > df.span,
            "fork-join {} must exceed data-flow {}",
            fj.span,
            df.span
        );
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        let _ = ge(6, &ge_kernel_flops(4));
    }

    #[test]
    fn single_tile_graphs_are_single_nodes() {
        assert_eq!(ge(1, &ge_kernel_flops(4)).len(), 1);
        assert_eq!(sw(1, &sw_kernel_flops(4)).len(), 1);
        assert_eq!(fw(1, &fw_kernel_flops(4)).len(), 1);
        assert_eq!(paren(1, &paren_kernel_flops(4)).len(), 1);
    }
}
