//! Compact DAG representation (CSR adjacency) sized for multi-million
//! node graphs (FW at 16K/64 has `T^3 = 16.7M` base tasks).

/// Node identifier (dense, 0-based).
pub type NodeId = u32;

/// What a DAG node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TaskKind {
    /// GE/FW diagonal base case.
    BaseA,
    /// GE/FW row-panel base case.
    BaseB,
    /// GE/FW column-panel base case.
    BaseC,
    /// GE/FW trailing-update base case.
    BaseD,
    /// Uniform tile base case (SW).
    Tile,
    /// A zero-cost synchronisation node (a fork-join `taskwait`).
    Sync,
}

impl TaskKind {
    /// True for nodes that execute a base-case kernel.
    pub fn is_compute(self) -> bool {
        !matches!(self, TaskKind::Sync)
    }
}

/// Incrementally builds a [`TaskGraph`].
#[derive(Debug, Default)]
pub struct GraphBuilder {
    weights: Vec<f64>,
    kinds: Vec<TaskKind>,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A builder with preallocated capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Self {
            weights: Vec::with_capacity(nodes),
            kinds: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Adds a node with the given kind and weight (flops), returning its
    /// id.
    pub fn add_node(&mut self, kind: TaskKind, weight: f64) -> NodeId {
        assert!(weight >= 0.0, "negative weight");
        let id = self.weights.len();
        assert!(id <= u32::MAX as usize, "graph too large for u32 node ids");
        self.weights.push(weight);
        self.kinds.push(kind);
        id as NodeId
    }

    /// Adds a dependency edge `from -> to` (`to` cannot start before
    /// `from` finishes).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        debug_assert!((from as usize) < self.weights.len());
        debug_assert!((to as usize) < self.weights.len());
        debug_assert_ne!(from, to, "self-loop");
        self.edges.push((from, to));
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True if no nodes were added.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Finalises into a [`TaskGraph`] (builds CSR successor lists and
    /// in-degrees).
    ///
    /// # Panics
    /// Panics if the edge set contains a cycle (checked via Kahn
    /// traversal in [`TaskGraph::assert_acyclic`]).
    pub fn build(self) -> TaskGraph {
        let n = self.weights.len();
        let mut succ_offsets = vec![0u32; n + 1];
        let mut in_degree = vec![0u32; n];
        for &(from, to) in &self.edges {
            succ_offsets[from as usize + 1] += 1;
            in_degree[to as usize] += 1;
        }
        for i in 0..n {
            succ_offsets[i + 1] += succ_offsets[i];
        }
        let mut succ = vec![0u32; self.edges.len()];
        let mut cursor: Vec<u32> = succ_offsets[..n].to_vec();
        for &(from, to) in &self.edges {
            let c = &mut cursor[from as usize];
            succ[*c as usize] = to;
            *c += 1;
        }
        let g = TaskGraph {
            weights: self.weights,
            kinds: self.kinds,
            succ_offsets,
            succ,
            in_degree,
        };
        g.assert_acyclic();
        g
    }
}

/// An immutable task DAG.
#[derive(Debug, Clone)]
pub struct TaskGraph {
    weights: Vec<f64>,
    kinds: Vec<TaskKind>,
    succ_offsets: Vec<u32>,
    succ: Vec<u32>,
    in_degree: Vec<u32>,
}

impl TaskGraph {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True for a node-less graph.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.succ.len()
    }

    /// Node weight in flops.
    #[inline]
    pub fn weight(&self, node: NodeId) -> f64 {
        self.weights[node as usize]
    }

    /// Node kind.
    #[inline]
    pub fn kind(&self, node: NodeId) -> TaskKind {
        self.kinds[node as usize]
    }

    /// Successors of a node.
    #[inline]
    pub fn successors(&self, node: NodeId) -> &[NodeId] {
        let lo = self.succ_offsets[node as usize] as usize;
        let hi = self.succ_offsets[node as usize + 1] as usize;
        &self.succ[lo..hi]
    }

    /// In-degree of a node.
    #[inline]
    pub fn in_degree(&self, node: NodeId) -> u32 {
        self.in_degree[node as usize]
    }

    /// A fresh copy of the in-degree array (consumed by schedulers).
    pub fn in_degrees(&self) -> Vec<u32> {
        self.in_degree.clone()
    }

    /// All nodes with no predecessors.
    pub fn roots(&self) -> Vec<NodeId> {
        (0..self.len() as u32)
            .filter(|&n| self.in_degree(n) == 0)
            .collect()
    }

    /// Count of compute (non-Sync) nodes.
    pub fn num_compute_nodes(&self) -> usize {
        self.kinds.iter().filter(|k| k.is_compute()).count()
    }

    /// Verifies the graph is acyclic (Kahn); panics otherwise. Called by
    /// [`GraphBuilder::build`].
    pub fn assert_acyclic(&self) {
        let mut deg = self.in_degrees();
        let mut queue: Vec<NodeId> = self.roots();
        let mut seen = 0usize;
        while let Some(n) = queue.pop() {
            seen += 1;
            for &s in self.successors(n) {
                deg[s as usize] -= 1;
                if deg[s as usize] == 0 {
                    queue.push(s);
                }
            }
        }
        assert_eq!(seen, self.len(), "task graph contains a cycle");
    }

    /// Visits nodes in a topological order, calling `f(node)`.
    pub fn topo_visit<F: FnMut(NodeId)>(&self, mut f: F) {
        let mut deg = self.in_degrees();
        let mut queue: std::collections::VecDeque<NodeId> = self.roots().into();
        while let Some(n) = queue.pop_front() {
            f(n);
            for &s in self.successors(n) {
                deg[s as usize] -= 1;
                if deg[s as usize] == 0 {
                    queue.push_back(s);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> TaskGraph {
        let mut b = GraphBuilder::new();
        let top = b.add_node(TaskKind::BaseA, 1.0);
        let l = b.add_node(TaskKind::BaseB, 2.0);
        let r = b.add_node(TaskKind::BaseC, 2.0);
        let bot = b.add_node(TaskKind::BaseD, 4.0);
        b.add_edge(top, l);
        b.add_edge(top, r);
        b.add_edge(l, bot);
        b.add_edge(r, bot);
        b.build()
    }

    #[test]
    fn csr_adjacency_roundtrip() {
        let g = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.successors(0), &[1, 2]);
        assert_eq!(g.successors(1), &[3]);
        assert_eq!(g.successors(3), &[] as &[u32]);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.roots(), vec![0]);
    }

    #[test]
    fn topo_visit_respects_edges() {
        let g = diamond();
        let mut pos = [usize::MAX; 4];
        let mut i = 0;
        g.topo_visit(|n| {
            pos[n as usize] = i;
            i += 1;
        });
        assert!(pos[0] < pos[1] && pos[0] < pos[2]);
        assert!(pos[1] < pos[3] && pos[2] < pos[3]);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_detected() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(TaskKind::Tile, 1.0);
        let y = b.add_node(TaskKind::Tile, 1.0);
        b.add_edge(x, y);
        b.add_edge(y, x);
        let _ = b.build();
    }

    #[test]
    fn compute_node_count_ignores_sync() {
        let mut b = GraphBuilder::new();
        b.add_node(TaskKind::Tile, 1.0);
        b.add_node(TaskKind::Sync, 0.0);
        let g = b.build();
        assert_eq!(g.num_compute_nodes(), 1);
    }

    #[test]
    fn builder_capacity_and_len() {
        let mut b = GraphBuilder::with_capacity(10, 10);
        assert!(b.is_empty());
        b.add_node(TaskKind::Tile, 1.0);
        assert_eq!(b.len(), 1);
    }
}

impl TaskGraph {
    /// Renders the DAG in Graphviz DOT format for inspection. Returns
    /// `None` when the graph exceeds `max_nodes` (DOT rendering of
    /// multi-million-node DAGs helps nobody).
    pub fn to_dot(&self, max_nodes: usize) -> Option<String> {
        if self.len() > max_nodes {
            return None;
        }
        use std::fmt::Write as _;
        let mut out = String::from("digraph tasks {\n  rankdir=TB;\n");
        for v in 0..self.len() as NodeId {
            let (shape, label) = match self.kind(v) {
                TaskKind::Sync => ("point", String::new()),
                k => ("box", format!("{k:?}\\n{:.0}", self.weight(v))),
            };
            let _ = writeln!(out, "  n{v} [shape={shape}, label=\"{label}\"];");
        }
        for v in 0..self.len() as NodeId {
            for &s in self.successors(v) {
                let _ = writeln!(out, "  n{v} -> n{s};");
            }
        }
        out.push_str("}\n");
        Some(out)
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;

    #[test]
    fn dot_renders_small_graphs() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(TaskKind::BaseA, 5.0);
        let s = b.add_node(TaskKind::Sync, 0.0);
        let y = b.add_node(TaskKind::BaseD, 7.0);
        b.add_edge(x, s);
        b.add_edge(s, y);
        let g = b.build();
        let dot = g.to_dot(10).unwrap();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("shape=point"));
        assert!(dot.contains("BaseD"));
    }

    #[test]
    fn dot_refuses_huge_graphs() {
        let mut b = GraphBuilder::new();
        for _ in 0..100 {
            b.add_node(TaskKind::Tile, 1.0);
        }
        assert!(b.build().to_dot(50).is_none());
    }
}
