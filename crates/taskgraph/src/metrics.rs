//! Work/span analysis: the quantities behind the paper's claim that
//! joins "increase the span asymptotically and thus reduce parallelism".

use crate::graph::{NodeId, TaskGraph};

/// Work, span and derived quantities of a task DAG, in flop units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphMetrics {
    /// `T1`: total weight of all nodes.
    pub work: f64,
    /// `T-inf`: weight of the heaviest dependency chain.
    pub span: f64,
    /// `T1 / T-inf`.
    pub parallelism: f64,
    /// Length (in nodes, compute nodes only) of the longest chain.
    pub critical_path_tasks: usize,
}

/// Computes [`GraphMetrics`] by a single topological sweep.
pub fn analyze(graph: &TaskGraph) -> GraphMetrics {
    let n = graph.len();
    if n == 0 {
        return GraphMetrics {
            work: 0.0,
            span: 0.0,
            parallelism: 0.0,
            critical_path_tasks: 0,
        };
    }
    let mut work = 0.0f64;
    // dist[v] = heaviest path weight ending at v (inclusive);
    // hops[v] = compute-node count along that path.
    let mut dist = vec![0.0f64; n];
    let mut hops = vec![0u32; n];
    let mut span = 0.0f64;
    let mut max_hops = 0u32;
    graph.topo_visit(|v| {
        let w = graph.weight(v);
        work += w;
        dist[v as usize] += w;
        if graph.kind(v).is_compute() {
            hops[v as usize] += 1;
        }
        if dist[v as usize] > span {
            span = dist[v as usize];
        }
        if hops[v as usize] > max_hops {
            max_hops = hops[v as usize];
        }
        let (dv, hv) = (dist[v as usize], hops[v as usize]);
        for &s in graph.successors(v) {
            if dv > dist[s as usize] {
                dist[s as usize] = dv;
                hops[s as usize] = hv;
            } else if dv == dist[s as usize] && hv > hops[s as usize] {
                hops[s as usize] = hv;
            }
        }
    });
    GraphMetrics {
        work,
        span,
        parallelism: if span > 0.0 { work / span } else { 0.0 },
        critical_path_tasks: max_hops as usize,
    }
}

/// Per-depth ready-width profile: `profile[d]` = number of compute tasks
/// whose earliest start depth is `d` when every task takes unit time and
/// parallelism is unbounded. This is the "how many tasks could run in
/// stage d" view of Fig. 3.
pub fn width_profile(graph: &TaskGraph) -> Vec<u64> {
    let n = graph.len();
    let mut depth = vec![0u32; n];
    let mut profile: Vec<u64> = Vec::new();
    graph.topo_visit(|v| {
        let d = depth[v as usize];
        // Sync nodes do not advance the stage counter.
        let next = if graph.kind(v).is_compute() {
            if profile.len() <= d as usize {
                profile.resize(d as usize + 1, 0);
            }
            profile[d as usize] += 1;
            d + 1
        } else {
            d
        };
        for &s in graph.successors(v) {
            if next > depth[s as usize] {
                depth[s as usize] = next;
            }
        }
    });
    let _ = NodeId::MAX; // keep the import meaningful for doc references
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphBuilder, TaskKind};

    fn chain(weights: &[f64]) -> TaskGraph {
        let mut b = GraphBuilder::new();
        let mut prev = None;
        for &w in weights {
            let n = b.add_node(TaskKind::Tile, w);
            if let Some(p) = prev {
                b.add_edge(p, n);
            }
            prev = Some(n);
        }
        b.build()
    }

    #[test]
    fn chain_has_span_equal_work() {
        let m = analyze(&chain(&[1.0, 2.0, 3.0]));
        assert_eq!(m.work, 6.0);
        assert_eq!(m.span, 6.0);
        assert_eq!(m.parallelism, 1.0);
        assert_eq!(m.critical_path_tasks, 3);
    }

    #[test]
    fn independent_tasks_have_span_of_max() {
        let mut b = GraphBuilder::new();
        for w in [5.0, 1.0, 2.0] {
            b.add_node(TaskKind::Tile, w);
        }
        let m = analyze(&b.build());
        assert_eq!(m.work, 8.0);
        assert_eq!(m.span, 5.0);
        assert_eq!(m.critical_path_tasks, 1);
    }

    #[test]
    fn sync_nodes_add_no_span_weight() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(TaskKind::Tile, 2.0);
        let s = b.add_node(TaskKind::Sync, 0.0);
        let c = b.add_node(TaskKind::Tile, 2.0);
        b.add_edge(a, s);
        b.add_edge(s, c);
        let m = analyze(&b.build());
        assert_eq!(m.span, 4.0);
        assert_eq!(m.critical_path_tasks, 2);
    }

    #[test]
    fn diamond_picks_heavier_branch() {
        let mut b = GraphBuilder::new();
        let top = b.add_node(TaskKind::Tile, 1.0);
        let light = b.add_node(TaskKind::Tile, 1.0);
        let heavy = b.add_node(TaskKind::Tile, 10.0);
        let bot = b.add_node(TaskKind::Tile, 1.0);
        b.add_edge(top, light);
        b.add_edge(top, heavy);
        b.add_edge(light, bot);
        b.add_edge(heavy, bot);
        let m = analyze(&b.build());
        assert_eq!(m.span, 12.0);
        assert_eq!(m.work, 13.0);
    }

    #[test]
    fn width_profile_counts_stage_tasks() {
        // top -> {l, r} -> bot: widths [1, 2, 1].
        let mut b = GraphBuilder::new();
        let top = b.add_node(TaskKind::Tile, 1.0);
        let l = b.add_node(TaskKind::Tile, 1.0);
        let r = b.add_node(TaskKind::Tile, 1.0);
        let bot = b.add_node(TaskKind::Tile, 1.0);
        b.add_edge(top, l);
        b.add_edge(top, r);
        b.add_edge(l, bot);
        b.add_edge(r, bot);
        assert_eq!(width_profile(&b.build()), vec![1, 2, 1]);
    }

    #[test]
    fn empty_graph_metrics() {
        let m = analyze(&GraphBuilder::new().build());
        assert_eq!(m.work, 0.0);
        assert_eq!(m.span, 0.0);
    }
}
