//! Parametric r-way fork-join DAGs and join-count predictors.
//!
//! The paper's introduction motivates *parametric r-way* recursive
//! divide-and-conquer DP algorithms (r-way R-DP) as the
//! performance-portable generalisation of the classic 2-way algorithms
//! this paper studies. This module builds the fork-join DAGs of the
//! r-way GE, SW and FW recursions: each region splits into `r x r`
//! sub-blocks and every level runs `r` sequential diagonal rounds (GE,
//! FW) or `2r - 1` anti-diagonal wavefront stages (SW) with joins
//! between stages.
//!
//! `r = 2` reproduces the [`crate::forkjoin`] builders' structure
//! exactly (same base tasks, same work); `r = t` degenerates to the
//! barriered tiled loop (one stage group per pivot step). Sweeping `r`
//! exposes the span/overhead trade-off the parametric algorithms
//! navigate.
//!
//! # Join-count predictors
//!
//! [`ge_join_count`], [`fw_join_count`] and [`sw_join_count`] predict
//! the number of *forked stage barriers* the fork-join engine executes:
//! one join per expansion stage that is actually forked (stage width
//! above the grain), matching the `taskwait` of the paper's Listing 3.
//! A stage at or below the grain runs serially inside the current task
//! and costs no join; the binary splitting a work-stealing pool uses
//! *inside* a forked stage is an implementation detail and is not
//! counted. These closed recursions mirror the stage lists of the
//! `recdp-kernels` r-way `expand` implementations term by term, so the
//! engine's measured join count must equal them exactly — that
//! cross-validation lives in the workspace-level `rway_model` test.

use std::collections::HashMap;

use crate::graph::{GraphBuilder, NodeId, TaskGraph, TaskKind};
use crate::KernelFlops;

#[derive(Debug, Clone)]
struct Block {
    entries: Vec<NodeId>,
    exits: Vec<NodeId>,
}

/// Shared series-parallel builder state for the r-way recursions; the
/// same seq/par algebra as [`crate::forkjoin`], plus the split width.
struct Rw<'a> {
    b: GraphBuilder,
    flops: &'a KernelFlops,
    r: usize,
}

impl<'a> Rw<'a> {
    fn new(r: usize, flops: &'a KernelFlops) -> Self {
        Self {
            b: GraphBuilder::new(),
            flops,
            r,
        }
    }

    fn leaf(&mut self, kind: TaskKind) -> Block {
        let id = self.b.add_node(kind, self.flops.weight(kind));
        Block {
            entries: vec![id],
            exits: vec![id],
        }
    }

    fn seq(&mut self, first: Block, second: Block) -> Block {
        if first.exits.len() * second.entries.len() <= first.exits.len() + second.entries.len() {
            for &x in &first.exits {
                for &e in &second.entries {
                    self.b.add_edge(x, e);
                }
            }
        } else {
            let sync = self.b.add_node(TaskKind::Sync, 0.0);
            for &x in &first.exits {
                self.b.add_edge(x, sync);
            }
            for &e in &second.entries {
                self.b.add_edge(sync, e);
            }
        }
        Block {
            entries: first.entries,
            exits: second.exits,
        }
    }

    fn par(&mut self, blocks: Vec<Block>) -> Block {
        let mut entries = Vec::new();
        let mut exits = Vec::new();
        for blk in blocks {
            entries.extend(blk.entries);
            exits.extend(blk.exits);
        }
        Block { entries, exits }
    }

    fn seq_chain(&mut self, stages: Vec<Block>) -> Block {
        let mut it = stages.into_iter();
        let mut acc = it.next().expect("non-empty");
        for s in it {
            acc = self.seq(acc, s);
        }
        acc
    }
}

// ---------------------------------------------------------------------
// GE: r diagonal rounds of pivot / panels / trailing update.
// ---------------------------------------------------------------------

struct RwayGe<'a>(Rw<'a>);

impl RwayGe<'_> {
    /// Regions are addressed in tile offsets like the 2-way builders.
    fn a(&mut self, d: usize, s: usize) -> Block {
        if s == 1 {
            return self.0.leaf(TaskKind::BaseA);
        }
        let r = self.0.r.min(s);
        let step = s / r;
        let mut rounds = Vec::with_capacity(3 * r);
        for q in 0..r {
            let kq = d + q * step;
            rounds.push(self.a(kq, step));
            let mut panels = Vec::new();
            for p in q + 1..r {
                panels.push(self.bfun(kq, d + p * step, step));
                panels.push(self.cfun(d + p * step, kq, step));
            }
            if !panels.is_empty() {
                let panels = self.0.par(panels);
                rounds.push(panels);
            }
            let mut trailing = Vec::new();
            for p in q + 1..r {
                for p2 in q + 1..r {
                    trailing.push(self.dfun(d + p * step, d + p2 * step, kq, step));
                }
            }
            if !trailing.is_empty() {
                let trailing = self.0.par(trailing);
                rounds.push(trailing);
            }
        }
        self.0.seq_chain(rounds)
    }

    fn bfun(&mut self, k0: usize, j0: usize, s: usize) -> Block {
        if s == 1 {
            return self.0.leaf(TaskKind::BaseB);
        }
        let r = self.0.r.min(s);
        let step = s / r;
        let mut rounds = Vec::new();
        for q in 0..r {
            let kq = k0 + q * step;
            let bs: Vec<Block> = (0..r).map(|p| self.bfun(kq, j0 + p * step, step)).collect();
            let bs = self.0.par(bs);
            rounds.push(bs);
            let mut ds = Vec::new();
            for p in q + 1..r {
                for p2 in 0..r {
                    ds.push(self.dfun(k0 + p * step, j0 + p2 * step, kq, step));
                }
            }
            if !ds.is_empty() {
                let ds = self.0.par(ds);
                rounds.push(ds);
            }
        }
        self.0.seq_chain(rounds)
    }

    fn cfun(&mut self, i0: usize, k0: usize, s: usize) -> Block {
        if s == 1 {
            return self.0.leaf(TaskKind::BaseC);
        }
        let r = self.0.r.min(s);
        let step = s / r;
        let mut rounds = Vec::new();
        for q in 0..r {
            let kq = k0 + q * step;
            let cs: Vec<Block> = (0..r).map(|p| self.cfun(i0 + p * step, kq, step)).collect();
            let cs = self.0.par(cs);
            rounds.push(cs);
            let mut ds = Vec::new();
            for p in 0..r {
                for p2 in q + 1..r {
                    ds.push(self.dfun(i0 + p * step, k0 + p2 * step, kq, step));
                }
            }
            if !ds.is_empty() {
                let ds = self.0.par(ds);
                rounds.push(ds);
            }
        }
        self.0.seq_chain(rounds)
    }

    // The tile coordinates don't change the DAG shape, but keeping them
    // mirrors the paper's D(i, j, k) recurrence.
    #[allow(clippy::only_used_in_recursion)]
    fn dfun(&mut self, i0: usize, j0: usize, k0: usize, s: usize) -> Block {
        if s == 1 {
            return self.0.leaf(TaskKind::BaseD);
        }
        let r = self.0.r.min(s);
        let step = s / r;
        let mut rounds = Vec::new();
        for q in 0..r {
            let kq = k0 + q * step;
            let ds: Vec<Block> = (0..r)
                .flat_map(|p| (0..r).map(move |p2| (p, p2)))
                .map(|(p, p2)| self.dfun(i0 + p * step, j0 + p2 * step, kq, step))
                .collect();
            let ds = self.0.par(ds);
            rounds.push(ds);
        }
        self.0.seq_chain(rounds)
    }
}

/// Fork-join DAG of r-way R-DP GE on `t` tiles per side. `t` must be a
/// power of `r` (e.g. `t = 16` with `r` in {2, 4, 16}).
pub fn ge(t: usize, r: usize, flops: &KernelFlops) -> TaskGraph {
    assert!(r >= 2, "need at least a 2-way split");
    assert!(is_power_of(t, r), "t = {t} must be a power of r = {r}");
    let mut builder = RwayGe(Rw::new(r, flops));
    let _ = builder.a(0, t);
    builder.0.b.build()
}

// ---------------------------------------------------------------------
// SW: 2r - 1 anti-diagonal wavefront stages per level; block (p, q)
// sits on wavefront p + q. At r = 2 this is X00; (X01 || X10); X11.
// ---------------------------------------------------------------------

struct RwaySw<'a>(Rw<'a>);

impl RwaySw<'_> {
    fn s(&mut self, s: usize) -> Block {
        if s == 1 {
            return self.0.leaf(TaskKind::Tile);
        }
        let r = self.0.r.min(s);
        let step = s / r;
        let mut stages = Vec::with_capacity(2 * r - 1);
        for dg in 0..2 * r - 1 {
            let lo = dg.saturating_sub(r - 1);
            let hi = dg.min(r - 1);
            let blocks: Vec<Block> = (lo..=hi).map(|_| self.s(step)).collect();
            let wave = self.0.par(blocks);
            stages.push(wave);
        }
        self.0.seq_chain(stages)
    }
}

/// Fork-join DAG of r-way R-DP SW (and LCS, which shares the wavefront
/// recursion) on `t` tiles per side. `t` must be a power of `r`.
pub fn sw(t: usize, r: usize, flops: &KernelFlops) -> TaskGraph {
    assert!(r >= 2, "need at least a 2-way split");
    assert!(is_power_of(t, r), "t = {t} must be a power of r = {r}");
    let mut builder = RwaySw(Rw::new(r, flops));
    let _ = builder.s(t);
    builder.0.b.build()
}

// ---------------------------------------------------------------------
// FW-APSP: r diagonal rounds, but every off-pivot block is revisited
// in every round (the generalisation of the already-eliminated-quadrant
// tail of the 2-way recursion).
// ---------------------------------------------------------------------

struct RwayFw<'a>(Rw<'a>);

impl RwayFw<'_> {
    fn a(&mut self, s: usize) -> Block {
        if s == 1 {
            return self.0.leaf(TaskKind::BaseA);
        }
        let r = self.0.r.min(s);
        let step = s / r;
        let mut rounds = Vec::with_capacity(3 * r);
        for _q in 0..r {
            rounds.push(self.a(step));
            // The r - 1 off-pivot row panels and r - 1 column panels
            // share one stage; which blocks they cover doesn't change
            // the DAG shape.
            let mut panels = Vec::new();
            for _ in 0..r - 1 {
                panels.push(self.bfun(step));
            }
            for _ in 0..r - 1 {
                panels.push(self.cfun(step));
            }
            if !panels.is_empty() {
                let panels = self.0.par(panels);
                rounds.push(panels);
            }
            let mut trailing = Vec::new();
            for _ in 0..(r - 1) * (r - 1) {
                trailing.push(self.dfun(step));
            }
            if !trailing.is_empty() {
                let trailing = self.0.par(trailing);
                rounds.push(trailing);
            }
        }
        self.0.seq_chain(rounds)
    }

    fn bfun(&mut self, s: usize) -> Block {
        if s == 1 {
            return self.0.leaf(TaskKind::BaseB);
        }
        let r = self.0.r.min(s);
        let step = s / r;
        let mut rounds = Vec::new();
        for _q in 0..r {
            let bs: Vec<Block> = (0..r).map(|_| self.bfun(step)).collect();
            let bs = self.0.par(bs);
            rounds.push(bs);
            let ds: Vec<Block> = (0..(r - 1) * r).map(|_| self.dfun(step)).collect();
            if !ds.is_empty() {
                let ds = self.0.par(ds);
                rounds.push(ds);
            }
        }
        self.0.seq_chain(rounds)
    }

    fn cfun(&mut self, s: usize) -> Block {
        if s == 1 {
            return self.0.leaf(TaskKind::BaseC);
        }
        let r = self.0.r.min(s);
        let step = s / r;
        let mut rounds = Vec::new();
        for _q in 0..r {
            let cs: Vec<Block> = (0..r).map(|_| self.cfun(step)).collect();
            let cs = self.0.par(cs);
            rounds.push(cs);
            let ds: Vec<Block> = (0..r * (r - 1)).map(|_| self.dfun(step)).collect();
            if !ds.is_empty() {
                let ds = self.0.par(ds);
                rounds.push(ds);
            }
        }
        self.0.seq_chain(rounds)
    }

    fn dfun(&mut self, s: usize) -> Block {
        if s == 1 {
            return self.0.leaf(TaskKind::BaseD);
        }
        let r = self.0.r.min(s);
        let step = s / r;
        let mut rounds = Vec::new();
        for _q in 0..r {
            let ds: Vec<Block> = (0..r * r).map(|_| self.dfun(step)).collect();
            let ds = self.0.par(ds);
            rounds.push(ds);
        }
        self.0.seq_chain(rounds)
    }
}

/// Fork-join DAG of r-way R-DP FW-APSP on `t` tiles per side. `t` must
/// be a power of `r`.
pub fn fw(t: usize, r: usize, flops: &KernelFlops) -> TaskGraph {
    assert!(r >= 2, "need at least a 2-way split");
    assert!(is_power_of(t, r), "t = {t} must be a power of r = {r}");
    let mut builder = RwayFw(Rw::new(r, flops));
    let _ = builder.a(t);
    builder.0.b.build()
}

/// True if `t = r^k` for some integer `k >= 0`.
pub fn is_power_of(mut t: usize, r: usize) -> bool {
    assert!(r >= 2);
    if t == 0 {
        return false;
    }
    while t.is_multiple_of(r) {
        t /= r;
    }
    t == 1
}

// ---------------------------------------------------------------------
// Join-count predictors.
//
// One join per *forked stage*: a stage of width w > grain costs exactly
// one barrier (the taskwait after its forked tasks), a stage of width
// w <= grain runs serially inside the current task and costs none.
// Width 1 stages therefore never join (grain >= 1). The recursions
// below enumerate the stage widths of the r-way `expand`s level by
// level; the effective radix clamps to min(r, s) exactly like the
// kernels, so misaligned (t not a power of r) cases are predicted too.
// ---------------------------------------------------------------------

const FN_A: u8 = 0;
const FN_B: u8 = 1;
const FN_D: u8 = 3;

#[inline]
fn barrier(width: usize, grain: usize) -> u64 {
    u64::from(width > grain)
}

type Memo = HashMap<(u8, usize), u64>;

fn ge_joins(f: u8, s: usize, r: usize, grain: usize, memo: &mut Memo) -> u64 {
    if s == 1 {
        return 0;
    }
    if let Some(&v) = memo.get(&(f, s)) {
        return v;
    }
    let rr = r.min(s);
    let sub = s / rr;
    let total: u64 = match f {
        FN_A => (0..rr)
            .map(|q| {
                let off = rr - 1 - q; // blocks past the pivot
                let mut j = barrier(1, grain) + ge_joins(FN_A, sub, r, grain, memo);
                if off > 0 {
                    // B and C share the panel stage and are symmetric.
                    j += barrier(2 * off, grain)
                        + 2 * off as u64 * ge_joins(FN_B, sub, r, grain, memo);
                    j += barrier(off * off, grain)
                        + (off * off) as u64 * ge_joins(FN_D, sub, r, grain, memo);
                }
                j
            })
            .sum(),
        FN_B => (0..rr)
            .map(|q| {
                let off = rr - 1 - q;
                let mut j = barrier(rr, grain) + rr as u64 * ge_joins(FN_B, sub, r, grain, memo);
                if off > 0 {
                    j += barrier(off * rr, grain)
                        + (off * rr) as u64 * ge_joins(FN_D, sub, r, grain, memo);
                }
                j
            })
            .sum(),
        FN_D => {
            rr as u64
                * (barrier(rr * rr, grain) + (rr * rr) as u64 * ge_joins(FN_D, sub, r, grain, memo))
        }
        _ => unreachable!(),
    };
    memo.insert((f, s), total);
    total
}

/// Forked-stage join count of r-way fork-join GE on `t` tiles at the
/// given fork grain (stages of at most `grain` calls run serially).
pub fn ge_join_count(t: usize, r: usize, grain: usize) -> u64 {
    assert!(r >= 2, "need at least a 2-way split");
    let grain = grain.max(1);
    ge_joins(FN_A, t, r, grain, &mut Memo::new())
}

fn fw_joins(f: u8, s: usize, r: usize, grain: usize, memo: &mut Memo) -> u64 {
    if s == 1 {
        return 0;
    }
    if let Some(&v) = memo.get(&(f, s)) {
        return v;
    }
    let rr = r.min(s);
    let sub = s / rr;
    let off = rr - 1; // every round updates all off-pivot blocks
    let total: u64 = match f {
        FN_A => {
            rr as u64
                * (barrier(1, grain)
                    + fw_joins(FN_A, sub, r, grain, memo)
                    + if off > 0 {
                        barrier(2 * off, grain)
                            + 2 * off as u64 * fw_joins(FN_B, sub, r, grain, memo)
                            + barrier(off * off, grain)
                            + (off * off) as u64 * fw_joins(FN_D, sub, r, grain, memo)
                    } else {
                        0
                    })
        }
        FN_B => {
            rr as u64
                * (barrier(rr, grain)
                    + rr as u64 * fw_joins(FN_B, sub, r, grain, memo)
                    + if off > 0 {
                        barrier(off * rr, grain)
                            + (off * rr) as u64 * fw_joins(FN_D, sub, r, grain, memo)
                    } else {
                        0
                    })
        }
        FN_D => {
            rr as u64
                * (barrier(rr * rr, grain) + (rr * rr) as u64 * fw_joins(FN_D, sub, r, grain, memo))
        }
        _ => unreachable!(),
    };
    memo.insert((f, s), total);
    total
}

/// Forked-stage join count of r-way fork-join FW-APSP on `t` tiles at
/// the given fork grain. B and C are symmetric so only B is modelled.
pub fn fw_join_count(t: usize, r: usize, grain: usize) -> u64 {
    assert!(r >= 2, "need at least a 2-way split");
    let grain = grain.max(1);
    fw_joins(FN_A, t, r, grain, &mut Memo::new())
}

fn sw_joins(s: usize, r: usize, grain: usize, memo: &mut HashMap<usize, u64>) -> u64 {
    if s == 1 {
        return 0;
    }
    if let Some(&v) = memo.get(&s) {
        return v;
    }
    let rr = r.min(s);
    let sub = s / rr;
    let total: u64 = (0..2 * rr - 1)
        .map(|dg| {
            let lo = dg.saturating_sub(rr - 1);
            let hi = dg.min(rr - 1);
            let width = hi - lo + 1;
            barrier(width, grain) + width as u64 * sw_joins(sub, r, grain, memo)
        })
        .sum();
    memo.insert(s, total);
    total
}

/// Forked-stage join count of r-way fork-join SW (and LCS, which shares
/// the wavefront recursion) on `t` tiles at the given fork grain.
pub fn sw_join_count(t: usize, r: usize, grain: usize) -> u64 {
    assert!(r >= 2, "need at least a 2-way split");
    let grain = grain.max(1);
    sw_joins(t, r, grain, &mut HashMap::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::analyze;
    use crate::{dataflow, forkjoin, fw_kernel_flops, ge_kernel_flops, sw_kernel_flops};

    #[test]
    fn power_check() {
        assert!(is_power_of(16, 2));
        assert!(is_power_of(16, 4));
        assert!(is_power_of(16, 16));
        assert!(!is_power_of(16, 3));
        assert!(is_power_of(1, 2));
        assert!(!is_power_of(0, 2));
    }

    #[test]
    fn base_task_count_matches_dataflow_for_all_r() {
        let f = ge_kernel_flops(8);
        for (t, rs) in [(8usize, vec![2usize, 8]), (16, vec![2, 4, 16])] {
            let expected = dataflow::ge(t, &f).len();
            for r in rs {
                let g = ge(t, r, &f);
                assert_eq!(g.num_compute_nodes(), expected, "t={t} r={r}");
            }
        }
    }

    #[test]
    fn sw_and_fw_base_task_counts_match_their_grids() {
        for (t, r) in [(8usize, 2usize), (16, 4), (8, 8)] {
            assert_eq!(sw(t, r, &sw_kernel_flops(4)).num_compute_nodes(), t * t);
            assert_eq!(
                fw(t, r, &fw_kernel_flops(4)).num_compute_nodes(),
                t * t * t,
                "t={t} r={r}"
            );
        }
    }

    #[test]
    fn two_way_matches_dedicated_builder() {
        let f = ge_kernel_flops(16);
        let t = 8;
        let rway = analyze(&ge(t, 2, &f));
        let twoway = analyze(&forkjoin::ge(t, &f));
        assert!((rway.work - twoway.work).abs() < 1e-9);
        assert!(
            (rway.span - twoway.span).abs() < 1e-9,
            "same recursion, same span"
        );
    }

    #[test]
    fn two_way_sw_and_fw_match_dedicated_builders() {
        let t = 8;
        let fs = sw_kernel_flops(4);
        let (a, b) = (analyze(&sw(t, 2, &fs)), analyze(&forkjoin::sw(t, &fs)));
        assert!((a.work - b.work).abs() < 1e-9);
        assert!((a.span - b.span).abs() < 1e-9, "same wavefront recursion");
        let ff = fw_kernel_flops(4);
        let (a, b) = (analyze(&fw(t, 2, &ff)), analyze(&forkjoin::fw(t, &ff)));
        assert!((a.work - b.work).abs() < 1e-9);
        // The dedicated 2-way FW builder interleaves the two pivot
        // rounds as A;BC;D;A;BC;D exactly like the r-way generalisation
        // at r = 2, so the spans agree too.
        assert!((a.span - b.span).abs() < 1e-9, "same recursion, same span");
    }

    #[test]
    fn larger_r_shrinks_the_span() {
        // The r-way structure trades depth for wider rounds: at the
        // degenerate r = t it is the barriered tiled loop, whose span
        // (in weighted tasks) undercuts the 2-way recursion's log
        // factors.
        let f = ge_kernel_flops(8);
        let t = 16;
        let s2 = analyze(&ge(t, 2, &f)).span;
        let s4 = analyze(&ge(t, 4, &f)).span;
        let s16 = analyze(&ge(t, 16, &f)).span;
        assert!(s4 <= s2, "4-way {s4} vs 2-way {s2}");
        assert!(s16 <= s4, "16-way {s16} vs 4-way {s4}");
        // But never below the true dependency span.
        let df = analyze(&dataflow::ge(t, &f)).span;
        assert!(s16 >= df - 1e-9);
    }

    #[test]
    fn larger_r_shrinks_sw_and_fw_spans() {
        let fs = sw_kernel_flops(1);
        let t = 16;
        let spans: Vec<f64> = [2usize, 4, 16]
            .iter()
            .map(|&r| analyze(&sw(t, r, &fs)).span)
            .collect();
        assert!(spans[1] <= spans[0] && spans[2] <= spans[1], "{spans:?}");
        // At r = t the wavefront is the tiled loop: span = 2t - 1 tiles.
        assert!((spans[2] / fs.tile - (2.0 * t as f64 - 1.0)).abs() < 1e-9);
        let ff = fw_kernel_flops(1);
        let f2 = analyze(&fw(t, 2, &ff)).span;
        let f4 = analyze(&fw(t, 4, &ff)).span;
        assert!(f4 <= f2, "4-way {f4} vs 2-way {f2}");
    }

    #[test]
    fn join_counts_decrease_strictly_in_r_on_aligned_t() {
        // t = 64 is a power of 2, 4 and 8 simultaneously, so all three
        // widths recurse at full radix at every level.
        let t = 64;
        for counts in [
            [2usize, 4, 8].map(|r| ge_join_count(t, r, 1)),
            [2usize, 4, 8].map(|r| fw_join_count(t, r, 1)),
        ] {
            assert!(
                counts[0] > counts[1] && counts[1] > counts[2],
                "wider decompositions must join less: {counts:?}"
            );
        }
        // SW is non-increasing but *ties* at r = 2 vs 4: each level has
        // 2r - 3 forked wavefront stages over r^2 children, giving the
        // closed form (2r - 3)(t^2 - 1)/(r^2 - 1), and (2*2 - 3)/3 =
        // (2*4 - 3)/15 = 1/3 exactly.
        let sw_counts = [2usize, 4, 8].map(|r| sw_join_count(t, r, 1));
        assert_eq!(sw_counts[0], sw_counts[1], "{sw_counts:?}");
        assert!(sw_counts[1] > sw_counts[2], "{sw_counts:?}");
        for r in [2usize, 4, 8] {
            let expect = ((2 * r - 3) * (t * t - 1) / (r * r - 1)) as u64;
            assert_eq!(sw_join_count(t, r, 1), expect, "closed form at r={r}");
        }
    }

    #[test]
    fn ge_join_count_regression_values() {
        // Hand-expanded from the stage recursions at t = 64, grain 1.
        assert_eq!(ge_join_count(64, 2, 1), 27_591);
        assert_eq!(ge_join_count(64, 4, 1), 6_885);
        assert_eq!(ge_join_count(64, 8, 1), 2_077);
    }

    #[test]
    fn small_cases_by_hand() {
        // t = 2, r = 2, grain 1: A expands to [A], [B, C], [D], [A] —
        // two stages of width 2 and 1 fork... the panel stage (w = 2)
        // and nothing else exceeds the grain, and D(1) has no stages.
        assert_eq!(ge_join_count(2, 2, 1), 1);
        // SW t = 2: stages of widths 1, 2, 1 — one barrier.
        assert_eq!(sw_join_count(2, 2, 1), 1);
        // FW t = 2: per round, panel stage w = 2 and trailing w = 1;
        // two rounds -> 2 barriers.
        assert_eq!(fw_join_count(2, 2, 1), 2);
        // A grain at least as wide as every stage means no forks at all.
        assert_eq!(ge_join_count(64, 2, 64 * 64), 0);
        assert_eq!(sw_join_count(64, 4, 64 * 64), 0);
        assert_eq!(fw_join_count(64, 8, 64 * 64 * 64), 0);
    }

    #[test]
    #[should_panic(expected = "power of r")]
    fn wrong_radix_rejected() {
        let _ = ge(12, 5, &ge_kernel_flops(8));
    }
}
