//! Parametric r-way fork-join DAGs for GE.
//!
//! The paper's introduction motivates *parametric r-way* recursive
//! divide-and-conquer DP algorithms (r-way R-DP) as the
//! performance-portable generalisation of the classic 2-way algorithms
//! this paper studies. This module builds the fork-join DAG of the
//! r-way GE recursion: each region splits into `r x r` sub-blocks and
//! every level runs `r` sequential diagonal rounds with joins between
//! the panel and trailing-update stages.
//!
//! `r = 2` reproduces [`crate::forkjoin::ge`]'s structure exactly (same
//! base tasks, same work); `r = t` degenerates to the barriered tiled
//! loop (one A/BC/D stage triple per pivot step). Sweeping `r` exposes
//! the span/overhead trade-off the parametric algorithms navigate.

use crate::graph::{GraphBuilder, NodeId, TaskGraph, TaskKind};
use crate::KernelFlops;

#[derive(Debug, Clone)]
struct Block {
    entries: Vec<NodeId>,
    exits: Vec<NodeId>,
}

struct RwayGe<'a> {
    b: GraphBuilder,
    flops: &'a KernelFlops,
    r: usize,
}

impl<'a> RwayGe<'a> {
    fn leaf(&mut self, kind: TaskKind) -> Block {
        let id = self.b.add_node(kind, self.flops.weight(kind));
        Block {
            entries: vec![id],
            exits: vec![id],
        }
    }

    fn seq(&mut self, first: Block, second: Block) -> Block {
        if first.exits.len() * second.entries.len() <= first.exits.len() + second.entries.len() {
            for &x in &first.exits {
                for &e in &second.entries {
                    self.b.add_edge(x, e);
                }
            }
        } else {
            let sync = self.b.add_node(TaskKind::Sync, 0.0);
            for &x in &first.exits {
                self.b.add_edge(x, sync);
            }
            for &e in &second.entries {
                self.b.add_edge(sync, e);
            }
        }
        Block {
            entries: first.entries,
            exits: second.exits,
        }
    }

    fn par(&mut self, blocks: Vec<Block>) -> Block {
        let mut entries = Vec::new();
        let mut exits = Vec::new();
        for blk in blocks {
            entries.extend(blk.entries);
            exits.extend(blk.exits);
        }
        Block { entries, exits }
    }

    fn seq_chain(&mut self, stages: Vec<Block>) -> Block {
        let mut it = stages.into_iter();
        let mut acc = it.next().expect("non-empty");
        for s in it {
            acc = self.seq(acc, s);
        }
        acc
    }

    /// `step` of the current level; regions are addressed in tile
    /// offsets like the 2-way builders.
    fn a(&mut self, d: usize, s: usize) -> Block {
        if s == 1 {
            return self.leaf(TaskKind::BaseA);
        }
        let r = self.r.min(s);
        let step = s / r;
        let mut rounds = Vec::with_capacity(3 * r);
        for q in 0..r {
            let kq = d + q * step;
            rounds.push(self.a(kq, step));
            let mut panels = Vec::new();
            for p in q + 1..r {
                panels.push(self.bfun(kq, d + p * step, step));
                panels.push(self.cfun(d + p * step, kq, step));
            }
            if !panels.is_empty() {
                let panels = self.par(panels);
                rounds.push(panels);
            }
            let mut trailing = Vec::new();
            for p in q + 1..r {
                for p2 in q + 1..r {
                    trailing.push(self.dfun(d + p * step, d + p2 * step, kq, step));
                }
            }
            if !trailing.is_empty() {
                let trailing = self.par(trailing);
                rounds.push(trailing);
            }
        }
        self.seq_chain(rounds)
    }

    fn bfun(&mut self, k0: usize, j0: usize, s: usize) -> Block {
        if s == 1 {
            return self.leaf(TaskKind::BaseB);
        }
        let r = self.r.min(s);
        let step = s / r;
        let mut rounds = Vec::new();
        for q in 0..r {
            let kq = k0 + q * step;
            let bs: Vec<Block> = (0..r).map(|p| self.bfun(kq, j0 + p * step, step)).collect();
            let bs = self.par(bs);
            rounds.push(bs);
            let mut ds = Vec::new();
            for p in q + 1..r {
                for p2 in 0..r {
                    ds.push(self.dfun(k0 + p * step, j0 + p2 * step, kq, step));
                }
            }
            if !ds.is_empty() {
                let ds = self.par(ds);
                rounds.push(ds);
            }
        }
        self.seq_chain(rounds)
    }

    fn cfun(&mut self, i0: usize, k0: usize, s: usize) -> Block {
        if s == 1 {
            return self.leaf(TaskKind::BaseC);
        }
        let r = self.r.min(s);
        let step = s / r;
        let mut rounds = Vec::new();
        for q in 0..r {
            let kq = k0 + q * step;
            let cs: Vec<Block> = (0..r).map(|p| self.cfun(i0 + p * step, kq, step)).collect();
            let cs = self.par(cs);
            rounds.push(cs);
            let mut ds = Vec::new();
            for p in 0..r {
                for p2 in q + 1..r {
                    ds.push(self.dfun(i0 + p * step, k0 + p2 * step, kq, step));
                }
            }
            if !ds.is_empty() {
                let ds = self.par(ds);
                rounds.push(ds);
            }
        }
        self.seq_chain(rounds)
    }

    // The tile coordinates don't change the DAG shape, but keeping them
    // mirrors the paper's D(i, j, k) recurrence.
    #[allow(clippy::only_used_in_recursion)]
    fn dfun(&mut self, i0: usize, j0: usize, k0: usize, s: usize) -> Block {
        if s == 1 {
            return self.leaf(TaskKind::BaseD);
        }
        let r = self.r.min(s);
        let step = s / r;
        let mut rounds = Vec::new();
        for q in 0..r {
            let kq = k0 + q * step;
            let ds: Vec<Block> = (0..r)
                .flat_map(|p| (0..r).map(move |p2| (p, p2)))
                .map(|(p, p2)| self.dfun(i0 + p * step, j0 + p2 * step, kq, step))
                .collect();
            let ds = self.par(ds);
            rounds.push(ds);
        }
        self.seq_chain(rounds)
    }
}

/// Fork-join DAG of r-way R-DP GE on `t` tiles per side. `t` must be a
/// power of `r` (e.g. `t = 16` with `r` in {2, 4, 16}).
pub fn ge(t: usize, r: usize, flops: &KernelFlops) -> TaskGraph {
    assert!(r >= 2, "need at least a 2-way split");
    assert!(is_power_of(t, r), "t = {t} must be a power of r = {r}");
    let mut builder = RwayGe {
        b: GraphBuilder::new(),
        flops,
        r,
    };
    let _ = builder.a(0, t);
    builder.b.build()
}

/// True if `t = r^k` for some integer `k >= 0`.
pub fn is_power_of(mut t: usize, r: usize) -> bool {
    assert!(r >= 2);
    if t == 0 {
        return false;
    }
    while t.is_multiple_of(r) {
        t /= r;
    }
    t == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::analyze;
    use crate::{dataflow, forkjoin, ge_kernel_flops};

    #[test]
    fn power_check() {
        assert!(is_power_of(16, 2));
        assert!(is_power_of(16, 4));
        assert!(is_power_of(16, 16));
        assert!(!is_power_of(16, 3));
        assert!(is_power_of(1, 2));
        assert!(!is_power_of(0, 2));
    }

    #[test]
    fn base_task_count_matches_dataflow_for_all_r() {
        let f = ge_kernel_flops(8);
        for (t, rs) in [(8usize, vec![2usize, 8]), (16, vec![2, 4, 16])] {
            let expected = dataflow::ge(t, &f).len();
            for r in rs {
                let g = ge(t, r, &f);
                assert_eq!(g.num_compute_nodes(), expected, "t={t} r={r}");
            }
        }
    }

    #[test]
    fn two_way_matches_dedicated_builder() {
        let f = ge_kernel_flops(16);
        let t = 8;
        let rway = analyze(&ge(t, 2, &f));
        let twoway = analyze(&forkjoin::ge(t, &f));
        assert!((rway.work - twoway.work).abs() < 1e-9);
        assert!(
            (rway.span - twoway.span).abs() < 1e-9,
            "same recursion, same span"
        );
    }

    #[test]
    fn larger_r_shrinks_the_span() {
        // The r-way structure trades depth for wider rounds: at the
        // degenerate r = t it is the barriered tiled loop, whose span
        // (in weighted tasks) undercuts the 2-way recursion's log
        // factors.
        let f = ge_kernel_flops(8);
        let t = 16;
        let s2 = analyze(&ge(t, 2, &f)).span;
        let s4 = analyze(&ge(t, 4, &f)).span;
        let s16 = analyze(&ge(t, 16, &f)).span;
        assert!(s4 <= s2, "4-way {s4} vs 2-way {s2}");
        assert!(s16 <= s4, "16-way {s16} vs 4-way {s4}");
        // But never below the true dependency span.
        let df = analyze(&dataflow::ge(t, &f)).span;
        assert!(s16 >= df - 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of r")]
    fn wrong_radix_rejected() {
        let _ = ge(12, 5, &ge_kernel_flops(8));
    }
}
