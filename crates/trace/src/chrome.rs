//! Chrome-trace (`chrome://tracing` / Perfetto) JSON export.

use std::fmt::Write as _;

use crate::{EventKind, StepOutcomeKind, TaskSource, Tracer};

/// Renders the whole timeline as a Chrome-trace JSON object. Spans
/// become complete (`"X"`) events, instants become `"i"` events; each
/// lane is one Chrome thread (`tid`), named by a metadata record.
pub(crate) fn render(tracer: &Tracer) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let push = |entry: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&entry);
    };
    for lane in tracer.lanes() {
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":{}}}}}",
                lane.id(),
                json_string(lane.name()),
            ),
            &mut out,
            &mut first,
        );
        for event in lane.events() {
            let ts = event.t_ns as f64 / 1000.0;
            let dur = event.dur_ns as f64 / 1000.0;
            let (name, args) = describe(tracer, event.kind);
            let mut entry = String::new();
            if event.dur_ns > 0 {
                let _ = write!(
                    entry,
                    "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{ts:.3},\"dur\":{dur:.3},\
                     \"name\":{}",
                    lane.id(),
                    json_string(&name),
                );
            } else {
                let _ = write!(
                    entry,
                    "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\"ts\":{ts:.3},\
                     \"name\":{}",
                    lane.id(),
                    json_string(&name),
                );
            }
            if !args.is_empty() {
                entry.push_str(",\"args\":{");
                for (i, (k, v)) in args.iter().enumerate() {
                    if i > 0 {
                        entry.push(',');
                    }
                    let _ = write!(entry, "{}:{}", json_string(k), json_string(v));
                }
                entry.push('}');
            }
            entry.push('}');
            push(entry, &mut out, &mut first);
        }
    }
    out.push_str("]}");
    out
}

fn describe(tracer: &Tracer, kind: EventKind) -> (String, Vec<(&'static str, String)>) {
    match kind {
        EventKind::TaskRun { source } => {
            let src = match source {
                TaskSource::Local => "local".to_string(),
                TaskSource::Inject => "inject".to_string(),
                TaskSource::Steal { victim } => format!("steal<-{victim}"),
            };
            ("task".to_string(), vec![("source", src)])
        }
        EventKind::TaskSpawn => ("spawn".to_string(), Vec::new()),
        EventKind::JoinWait => ("join-wait".to_string(), Vec::new()),
        EventKind::Park => ("park".to_string(), Vec::new()),
        EventKind::StepRun { step, tag, outcome } => {
            let name = tracer
                .step_name(step)
                .unwrap_or_else(|| format!("step#{}", step.0));
            let outcome = match outcome {
                StepOutcomeKind::Completed => "completed",
                StepOutcomeKind::Requeued => "requeued",
                StepOutcomeKind::Failed => "failed",
                StepOutcomeKind::Panicked => "panicked",
            };
            (
                name,
                vec![
                    ("tag", format!("{tag:#x}")),
                    ("outcome", outcome.to_string()),
                ],
            )
        }
        EventKind::BlockedGet { instance } => (
            "blocked-get".to_string(),
            vec![("instance", format!("{instance:#x}"))],
        ),
        EventKind::Resume { instance } => (
            "resume".to_string(),
            vec![("instance", format!("{instance:#x}"))],
        ),
        EventKind::StepRetry { step, tag } => {
            let name = tracer
                .step_name(step)
                .unwrap_or_else(|| format!("step#{}", step.0));
            (
                "retry".to_string(),
                vec![("step", name), ("tag", format!("{tag:#x}"))],
            )
        }
        EventKind::WorkerDied { worker } => (
            "worker-died".to_string(),
            vec![("worker", worker.to_string())],
        ),
        EventKind::WorkRequeued { worker, tasks } => (
            "work-requeued".to_string(),
            vec![("worker", worker.to_string()), ("tasks", tasks.to_string())],
        ),
        EventKind::WorkerRespawned { worker } => (
            "worker-respawned".to_string(),
            vec![("worker", worker.to_string())],
        ),
        EventKind::CorruptionDetected { step, tile } => {
            let name = tracer
                .step_name(step)
                .unwrap_or_else(|| format!("step#{}", step.0));
            (
                "corruption-detected".to_string(),
                vec![("step", name), ("tile", format!("{tile:#x}"))],
            )
        }
        EventKind::TileRecomputed { step, tile } => {
            let name = tracer
                .step_name(step)
                .unwrap_or_else(|| format!("step#{}", step.0));
            (
                "tile-recomputed".to_string(),
                vec![("step", name), ("tile", format!("{tile:#x}"))],
            )
        }
    }
}

/// Minimal JSON string encoder (names here are identifiers, but a step
/// name is user input, so escape properly anyway).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, StepOutcomeKind, TaskSource, Tracer};

    #[test]
    fn export_contains_lane_names_spans_and_instants() {
        let tracer = Tracer::new();
        let lane = tracer.register_lane("recdp-fj-0");
        let step = tracer.intern("update");
        lane.record(
            EventKind::TaskRun {
                source: TaskSource::Steal { victim: 3 },
            },
            1_000,
            2_000,
        );
        lane.record(
            EventKind::StepRun {
                step,
                tag: 0xAB,
                outcome: StepOutcomeKind::Completed,
            },
            4_000,
            500,
        );
        lane.record(EventKind::BlockedGet { instance: 0x10 }, 5_000, 0);
        let json = tracer.chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"recdp-fj-0\""));
        assert!(json.contains("\"steal<-3\""));
        assert!(json.contains("\"update\""));
        assert!(json.contains("\"outcome\":\"completed\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":2.000"));
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
