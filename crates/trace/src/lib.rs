//! `recdp-trace`: a low-overhead, per-worker event tracing subsystem for
//! the fork-join and data-flow runtimes.
//!
//! The paper's central claim — fork-join `taskwait` joins add
//! *artificial* dependencies that inflate span and idle threads, while
//! data-flow fires on *true* dependencies — is modeled analytically in
//! `recdp-taskgraph`. This crate measures it from real execution:
//!
//! * [`Tracer`] hands out one [`Lane`] (a bounded event ring) per
//!   thread. Instrumented runtimes record [`Event`]s into their lane —
//!   `recdp-forkjoin` emits task spawn/run (with steal provenance),
//!   park/unpark (a park span ends at the unpark) and join-wait events;
//!   `recdp-cnc` emits step start/finish, blocked-get, requeue and
//!   retry events. Recording is a timestamp plus an uncontended
//!   per-lane mutex push; with no tracer installed the runtimes take a
//!   single branch on `None` and record nothing.
//! * [`TraceSession`] / [`TraceReport`] aggregate the recorded
//!   intervals into *measured work* (busy thread-time), *measured span*
//!   (a greedy-scheduler critical-path estimate over the recorded
//!   intervals), measured parallelism, and an idle-time decomposition
//!   that separates artificial-dependency stalls (fork-join join waits)
//!   from true-dependency waits (CnC blocked gets).
//! * [`Tracer::chrome_trace`] exports the raw timeline as Chrome-trace
//!   JSON (load it at `chrome://tracing` or <https://ui.perfetto.dev>).
//! * [`Tracer::normalized`] projects the event sequence down to its
//!   schedule shape (timestamps stripped, instance identities
//!   renumbered), which is bit-identical across replays of the same
//!   managed-mode schedule — the determinism oracle `recdp-check` uses.
//!
//! # Example
//!
//! ```
//! use recdp_trace::{EventKind, TaskSource, TraceSession};
//!
//! let session = TraceSession::new(2);
//! let lane = session.tracer().lane();
//! let t0 = lane.now();
//! // ... do 'work' ...
//! lane.span(EventKind::TaskRun { source: TaskSource::Local }, t0);
//! let report = session.report();
//! assert_eq!(report.tasks, 1);
//! assert!(report.work_ns <= report.wall_ns);
//! ```

#![warn(missing_docs)]

mod chrome;
mod report;

pub use report::TraceReport;

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, Weak};
use std::time::Instant;

use parking_lot::Mutex;

/// Interned identifier of a step-collection name (see [`Tracer::intern`]).
/// Interning keeps [`Event`] `Copy` and fixed-size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StepId(pub u32);

/// Where a fork-join worker obtained the task it executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskSource {
    /// Popped from the worker's own deque.
    Local,
    /// Taken from the shared injector (an external submission).
    Inject,
    /// Stolen from another worker's deque.
    Steal {
        /// Index of the victim worker.
        victim: u32,
    },
}

/// How a CnC step execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcomeKind {
    /// Ran to completion.
    Completed,
    /// Aborted by a failed blocking get and requeued: the instance parks
    /// on the missing items and re-executes from scratch when they
    /// arrive. The execution's duration is wasted thread time — the
    /// *true-dependency* stall the report's decomposition isolates.
    Requeued,
    /// Returned a structured failure.
    Failed,
    /// The body panicked.
    Panicked,
}

/// What an [`Event`] records. Spans carry a nonzero duration; instants
/// have `dur_ns == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// fork-join: a queued task executed (span).
    TaskRun {
        /// Where the task came from (steal provenance).
        source: TaskSource,
    },
    /// fork-join: a task was pushed or injected (instant).
    TaskSpawn,
    /// fork-join: pure idle inside a join / scope-exit wait while the
    /// other branch is outstanding (span) — the *artificial-dependency*
    /// stall of the paper's model. Nested helping is excluded: the span
    /// covers only time spent spinning/yielding with no work found.
    JoinWait,
    /// fork-join: the worker parked on the sleep condvar with no work
    /// anywhere (span; the span's end is the unpark).
    Park,
    /// cnc: one step execution (span), however it ended.
    StepRun {
        /// Interned step-collection name.
        step: StepId,
        /// Deterministic hash of the prescribing tag.
        tag: u64,
        /// How the execution ended.
        outcome: StepOutcomeKind,
    },
    /// cnc: an instance parked on missing items after a failed blocking
    /// get (instant). Paired with [`EventKind::Resume`] by `instance`
    /// to measure the logical true-dependency wait.
    BlockedGet {
        /// Identity of the parked instance (stable within a run only).
        instance: u64,
    },
    /// cnc: a parked instance was resumed — every dependency arrived
    /// (instant).
    Resume {
        /// Identity of the resumed instance.
        instance: u64,
    },
    /// cnc: a transient-failure retry was re-dispatched (instant).
    StepRetry {
        /// Interned step-collection name.
        step: StepId,
        /// Deterministic hash of the prescribing tag.
        tag: u64,
    },
    /// fork-join: a worker honoured its fail-stop schedule and exited
    /// mid-run (instant, recorded on the dying worker's lane).
    WorkerDied {
        /// Index of the dead worker.
        worker: u32,
    },
    /// fork-join: the dying worker drained queued tasks from its deque
    /// back into the shared injector so survivors pick them up (instant).
    WorkRequeued {
        /// Index of the worker whose deque was drained.
        worker: u32,
        /// Number of tasks moved to the injector.
        tasks: u64,
    },
    /// fork-join: a replacement worker thread took over a dead worker's
    /// slot (instant, recorded on the replacement's lane).
    WorkerRespawned {
        /// Index of the revived worker slot.
        worker: u32,
    },
    /// integrity: a tile-output digest mismatch was detected — silent
    /// cell corruption caught by verification, or a mangled item payload
    /// caught by a consumer (instant).
    CorruptionDetected {
        /// Interned step (or item-collection) name.
        step: StepId,
        /// Deterministic hash of the affected tile key.
        tile: u64,
    },
    /// integrity: a quarantined tile was recomputed from its pre-image
    /// (self-healing repair, instant).
    TileRecomputed {
        /// Interned step name of the recomputing task.
        step: StepId,
        /// Deterministic hash of the recomputed tile key.
        tile: u64,
    },
}

/// One timestamped event in a [`Lane`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Start offset from the tracer epoch, in nanoseconds.
    pub t_ns: u64,
    /// Duration in nanoseconds (0 for instant events).
    pub dur_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

/// A per-worker event ring. Recording takes the lane's (uncontended —
/// each thread writes only its own lane) mutex and pushes one `Copy`
/// event; once the ring is full, further events are counted as dropped
/// rather than rotating, so aggregation always sees a consistent prefix
/// of the run.
pub struct Lane {
    id: u32,
    name: String,
    epoch: Instant,
    buf: Mutex<LaneBuf>,
}

struct LaneBuf {
    events: Vec<Event>,
    cap: usize,
    dropped: u64,
}

impl Lane {
    /// Lane index, in registration order (the Chrome-trace `tid`).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Lane name (usually the owning thread's name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Nanoseconds since the tracer epoch.
    #[inline]
    pub fn now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Records an event with explicit timestamps.
    pub fn record(&self, kind: EventKind, t_ns: u64, dur_ns: u64) {
        let mut buf = self.buf.lock();
        if buf.events.len() >= buf.cap {
            buf.dropped += 1;
            return;
        }
        buf.events.push(Event { t_ns, dur_ns, kind });
    }

    /// Records an instant event stamped now.
    pub fn instant(&self, kind: EventKind) {
        let t = self.now();
        self.record(kind, t, 0);
    }

    /// Records a span from `start_ns` (a value previously taken from
    /// [`Lane::now`]) until now.
    pub fn span(&self, kind: EventKind, start_ns: u64) {
        let end = self.now();
        self.record(kind, start_ns, end.saturating_sub(start_ns));
    }

    /// Snapshot of the recorded events, in record order.
    pub fn events(&self) -> Vec<Event> {
        self.buf.lock().events.clone()
    }

    /// Number of events that did not fit the ring.
    pub fn dropped(&self) -> u64 {
        self.buf.lock().dropped
    }
}

#[derive(Default)]
struct NameTable {
    ids: HashMap<String, u32>,
    names: Vec<String>,
}

/// The trace collector: owns the epoch, the lanes, and the step-name
/// intern table. Create one per run, hand clones of the `Arc` to the
/// runtimes, then aggregate with [`TraceSession::report`] (or read the
/// lanes directly).
pub struct Tracer {
    epoch: Instant,
    cap: usize,
    lanes: Mutex<Vec<Arc<Lane>>>,
    names: Mutex<NameTable>,
}

thread_local! {
    /// Per-thread lane cache: (tracer identity, lane). Keyed weakly so a
    /// dead tracer's entry cannot alias a new tracer allocated at the
    /// same address.
    static LANE_CACHE: RefCell<Vec<(Weak<Tracer>, Arc<Lane>)>> =
        const { RefCell::new(Vec::new()) };
}

impl Tracer {
    /// Default per-lane event capacity (events beyond it are counted as
    /// dropped, not recorded).
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// A tracer with the default per-lane capacity.
    pub fn new() -> Arc<Self> {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A tracer whose lanes hold at most `cap` events each.
    pub fn with_capacity(cap: usize) -> Arc<Self> {
        Arc::new(Tracer {
            epoch: Instant::now(),
            cap: cap.max(1),
            lanes: Mutex::new(Vec::new()),
            names: Mutex::new(NameTable::default()),
        })
    }

    /// Nanoseconds since the tracer epoch.
    pub fn now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Registers a new lane. Instrumented threads normally go through
    /// [`Tracer::lane`] instead, which caches one lane per thread.
    pub fn register_lane(&self, name: impl Into<String>) -> Arc<Lane> {
        let mut lanes = self.lanes.lock();
        let lane = Arc::new(Lane {
            id: lanes.len() as u32,
            name: name.into(),
            epoch: self.epoch,
            buf: Mutex::new(LaneBuf {
                events: Vec::new(),
                cap: self.cap,
                dropped: 0,
            }),
        });
        lanes.push(Arc::clone(&lane));
        lane
    }

    /// The calling thread's lane in this tracer, registering (named
    /// after the thread) and caching it on first use.
    pub fn lane(self: &Arc<Self>) -> Arc<Lane> {
        LANE_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            cache.retain(|(t, _)| t.strong_count() > 0);
            for (t, lane) in cache.iter() {
                if let Some(t) = t.upgrade() {
                    if Arc::ptr_eq(&t, self) {
                        return Arc::clone(lane);
                    }
                }
            }
            let name = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{}", self.lanes.lock().len()));
            let lane = self.register_lane(name);
            cache.push((Arc::downgrade(self), Arc::clone(&lane)));
            lane
        })
    }

    /// Interns a step-collection name (idempotent).
    pub fn intern(&self, name: &str) -> StepId {
        let mut table = self.names.lock();
        if let Some(&id) = table.ids.get(name) {
            return StepId(id);
        }
        let id = table.names.len() as u32;
        table.names.push(name.to_string());
        table.ids.insert(name.to_string(), id);
        StepId(id)
    }

    /// The name behind an interned [`StepId`].
    pub fn step_name(&self, id: StepId) -> Option<String> {
        self.names.lock().names.get(id.0 as usize).cloned()
    }

    /// Snapshot of the registered lanes, in registration order.
    pub fn lanes(&self) -> Vec<Arc<Lane>> {
        self.lanes.lock().clone()
    }

    /// Total events dropped across all lanes (ring overflow).
    pub fn dropped(&self) -> u64 {
        self.lanes().iter().map(|l| l.dropped()).sum()
    }

    /// The recorded timeline as Chrome-trace JSON (`chrome://tracing` /
    /// Perfetto). One Chrome thread per lane, spans as complete (`"X"`)
    /// events, instants as `"i"` events.
    pub fn chrome_trace(&self) -> String {
        chrome::render(self)
    }

    /// The schedule-shape projection of the recorded events: lanes in
    /// registration order, events in record order, timestamps and
    /// durations stripped, step ids resolved to names, and instance
    /// identities (which are addresses, unstable across runs) renumbered
    /// by first appearance. Two replays of the same managed-mode
    /// schedule produce bit-identical projections.
    pub fn normalized(&self) -> Vec<NormalizedEvent> {
        let mut renumber: HashMap<u64, u64> = HashMap::new();
        let mut next = 0u64;
        let mut out = Vec::new();
        let mut resolve = |instance: u64| {
            *renumber.entry(instance).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            })
        };
        for lane in self.lanes() {
            for event in lane.events() {
                out.push(match event.kind {
                    EventKind::TaskRun { source } => NormalizedEvent::TaskRun { source },
                    EventKind::TaskSpawn => NormalizedEvent::TaskSpawn,
                    EventKind::JoinWait => NormalizedEvent::JoinWait,
                    EventKind::Park => NormalizedEvent::Park,
                    EventKind::StepRun { step, tag, outcome } => NormalizedEvent::StepRun {
                        step: self.step_name(step).unwrap_or_default(),
                        tag,
                        outcome,
                    },
                    EventKind::BlockedGet { instance } => NormalizedEvent::BlockedGet {
                        instance: resolve(instance),
                    },
                    EventKind::Resume { instance } => NormalizedEvent::Resume {
                        instance: resolve(instance),
                    },
                    EventKind::StepRetry { step, tag } => NormalizedEvent::StepRetry {
                        step: self.step_name(step).unwrap_or_default(),
                        tag,
                    },
                    EventKind::WorkerDied { worker } => NormalizedEvent::WorkerDied { worker },
                    EventKind::CorruptionDetected { step, tile } => {
                        NormalizedEvent::CorruptionDetected {
                            step: self.step_name(step).unwrap_or_default(),
                            tile,
                        }
                    }
                    EventKind::TileRecomputed { step, tile } => NormalizedEvent::TileRecomputed {
                        step: self.step_name(step).unwrap_or_default(),
                        tile,
                    },
                    EventKind::WorkRequeued { worker, tasks } => {
                        NormalizedEvent::WorkRequeued { worker, tasks }
                    }
                    EventKind::WorkerRespawned { worker } => {
                        NormalizedEvent::WorkerRespawned { worker }
                    }
                });
            }
        }
        out
    }
}

/// One event of [`Tracer::normalized`]: the schedule shape without
/// timestamps or run-specific identities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NormalizedEvent {
    /// A queued fork-join task executed.
    TaskRun {
        /// Where the task came from.
        source: TaskSource,
    },
    /// A fork-join task was pushed or injected.
    TaskSpawn,
    /// Pure idle inside a fork-join join wait.
    JoinWait,
    /// A fork-join worker parked.
    Park,
    /// One CnC step execution.
    StepRun {
        /// Step-collection name.
        step: String,
        /// Deterministic hash of the prescribing tag.
        tag: u64,
        /// How the execution ended.
        outcome: StepOutcomeKind,
    },
    /// A CnC instance parked on missing items.
    BlockedGet {
        /// Renumbered (first-appearance order) instance identity.
        instance: u64,
    },
    /// A parked CnC instance resumed.
    Resume {
        /// Renumbered instance identity.
        instance: u64,
    },
    /// A CnC transient-failure retry was re-dispatched.
    StepRetry {
        /// Step-collection name.
        step: String,
        /// Deterministic hash of the prescribing tag.
        tag: u64,
    },
    /// A fork-join worker honoured its fail-stop schedule and exited.
    WorkerDied {
        /// Index of the dead worker.
        worker: u32,
    },
    /// A dying worker's queued tasks were requeued on the injector.
    WorkRequeued {
        /// Index of the drained worker.
        worker: u32,
        /// Number of tasks requeued.
        tasks: u64,
    },
    /// A replacement worker took over a dead worker's slot.
    WorkerRespawned {
        /// Index of the revived worker slot.
        worker: u32,
    },
    /// A tile-output digest mismatch was detected.
    CorruptionDetected {
        /// Step (or item-collection) name.
        step: String,
        /// Deterministic hash of the affected tile key.
        tile: u64,
    },
    /// A quarantined tile was recomputed from its pre-image.
    TileRecomputed {
        /// Step name of the recomputing task.
        step: String,
        /// Deterministic hash of the recomputed tile key.
        tile: u64,
    },
}

/// Renders a `catch_unwind` payload as a human-readable message. Shared
/// by the runtimes' recovery paths so panics are reported uniformly
/// (step panics in `recdp-cnc`, task panics in `recdp-forkjoin`).
pub fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_string()
    }
}

/// A measurement session: a [`Tracer`] plus the worker count its
/// [`TraceReport`] normalizes against.
pub struct TraceSession {
    tracer: Arc<Tracer>,
    workers: usize,
}

impl TraceSession {
    /// A session with a fresh tracer, reporting against `workers`
    /// worker threads.
    pub fn new(workers: usize) -> Self {
        Self::with_tracer(Tracer::new(), workers)
    }

    /// A session around an existing tracer.
    pub fn with_tracer(tracer: Arc<Tracer>, workers: usize) -> Self {
        TraceSession {
            tracer,
            workers: workers.max(1),
        }
    }

    /// The tracer to install into the runtimes.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The worker count the report normalizes against.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Aggregates everything recorded so far into a [`TraceReport`].
    pub fn report(&self) -> TraceReport {
        TraceReport::build(&self.tracer, self.workers)
    }

    /// Chrome-trace JSON of everything recorded so far.
    pub fn chrome_trace(&self) -> String {
        self.tracer.chrome_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_records_and_snapshots() {
        let tracer = Tracer::new();
        let lane = tracer.register_lane("w0");
        lane.record(EventKind::TaskSpawn, 10, 0);
        lane.record(
            EventKind::TaskRun {
                source: TaskSource::Local,
            },
            20,
            5,
        );
        let events = lane.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::TaskSpawn);
        assert_eq!(events[1].t_ns, 20);
        assert_eq!(events[1].dur_ns, 5);
        assert_eq!(lane.dropped(), 0);
    }

    #[test]
    fn ring_saturates_and_counts_drops() {
        let tracer = Tracer::with_capacity(2);
        let lane = tracer.register_lane("w0");
        for t in 0..5 {
            lane.record(EventKind::TaskSpawn, t, 0);
        }
        assert_eq!(lane.events().len(), 2);
        assert_eq!(lane.dropped(), 3);
        assert_eq!(tracer.dropped(), 3);
    }

    #[test]
    fn per_thread_lane_is_cached_per_tracer() {
        let a = Tracer::new();
        let b = Tracer::new();
        let la1 = a.lane();
        let la2 = a.lane();
        let lb = b.lane();
        assert!(Arc::ptr_eq(&la1, &la2));
        assert_eq!(la1.id(), 0);
        assert_eq!(lb.id(), 0, "second tracer starts its own lane numbering");
        assert_eq!(a.lanes().len(), 1);
        let t = std::thread::spawn({
            let a = Arc::clone(&a);
            move || a.lane().id()
        });
        assert_eq!(t.join().unwrap(), 1, "another thread gets its own lane");
        assert_eq!(a.lanes().len(), 2);
    }

    #[test]
    fn interning_is_idempotent_and_resolvable() {
        let tracer = Tracer::new();
        let a = tracer.intern("update");
        let b = tracer.intern("diag");
        assert_eq!(tracer.intern("update"), a);
        assert_ne!(a, b);
        assert_eq!(tracer.step_name(a).as_deref(), Some("update"));
        assert_eq!(tracer.step_name(StepId(99)), None);
    }

    #[test]
    fn normalized_renumbers_instances_by_first_appearance() {
        let tracer = Tracer::new();
        let lane = tracer.register_lane("driver");
        let step = tracer.intern("s");
        // Two instances identified by (arbitrary) addresses.
        lane.record(EventKind::BlockedGet { instance: 0xDEAD }, 1, 0);
        lane.record(EventKind::BlockedGet { instance: 0xBEEF }, 2, 0);
        lane.record(EventKind::Resume { instance: 0xDEAD }, 3, 0);
        lane.record(
            EventKind::StepRun {
                step,
                tag: 7,
                outcome: StepOutcomeKind::Completed,
            },
            4,
            10,
        );
        let n = tracer.normalized();
        assert_eq!(
            n,
            vec![
                NormalizedEvent::BlockedGet { instance: 0 },
                NormalizedEvent::BlockedGet { instance: 1 },
                NormalizedEvent::Resume { instance: 0 },
                NormalizedEvent::StepRun {
                    step: "s".into(),
                    tag: 7,
                    outcome: StepOutcomeKind::Completed
                },
            ]
        );
    }

    #[test]
    fn session_reports_synthetic_timeline() {
        let session = TraceSession::new(2);
        let lane = session.tracer().lane();
        let t0 = lane.now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        lane.span(
            EventKind::TaskRun {
                source: TaskSource::Inject,
            },
            t0,
        );
        let report = session.report();
        assert_eq!(report.tasks, 1);
        assert!(report.work_ns > 0);
        assert!(report.work_ns <= report.wall_ns + 1);
    }
}
