//! Aggregation: measured work, measured span, and the idle-time
//! decomposition.

use std::collections::HashMap;

use crate::{EventKind, StepOutcomeKind, TaskSource, Tracer};

/// Aggregate view of one traced run.
///
/// *Work* is busy thread-time: the union of each lane's execution spans
/// (task runs and step runs, nested helping merged away) minus the
/// directly-measured idle spans recorded inside them (join waits,
/// parks). *Span* is a greedy-scheduler critical-path estimate: the
/// total time during which fewer than `workers` lanes were busy. Under
/// greedy scheduling every such instant must be advancing the critical
/// path (a saturated instant is work-limited, not dependency-limited),
/// so `span_ns` upper-bounds the schedule's realized `T_inf` over the
/// session window and `work_ns / span_ns` is the measured parallelism —
/// the empirical counterpart of the `recdp-taskgraph` model's
/// `T1 / T-inf`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceReport {
    /// Worker count the span estimate normalizes against.
    pub workers: usize,
    /// Session window: first execution-span start to last execution-span
    /// end (all events when no executions were recorded). Bounding by
    /// executions keeps a pool idling before shutdown — trailing park
    /// spans — from inflating the window.
    pub wall_ns: u64,
    /// Measured work `T1`: total busy thread-time.
    pub work_ns: u64,
    /// Measured span: time with fewer than `workers` lanes busy
    /// (greedy-scheduler critical-path estimate).
    pub span_ns: u64,
    /// `work_ns / span_ns` (0 when nothing was recorded).
    pub parallelism: f64,
    /// Idle decomposition, artificial dependencies: pure idle inside
    /// fork-join join/scope waits ([`EventKind::JoinWait`]).
    pub join_idle_ns: u64,
    /// Idle decomposition, no work anywhere: worker condvar parks
    /// ([`EventKind::Park`]), totalled over the whole pool lifetime
    /// (including before/after the workload).
    pub park_ns: u64,
    /// Measured idle *inside the session window*: the per-lane union of
    /// park and join-wait spans clipped to `[window_start, window_end]`,
    /// summed over lanes. This is the starvation that matters for the
    /// paper's comparison: under fork-join the only reason a worker is
    /// idle mid-run is that join barriers have narrowed the exposed
    /// parallelism (artificial dependencies), while under data-flow a
    /// mid-run park means no step's true producers have finished yet.
    /// Owner-side join waits are almost always hidden by helping (see
    /// `join_idle_ns`), so this barrier-level starvation is where the
    /// artificial-dependency cost actually surfaces.
    pub starved_ns: u64,
    /// Idle decomposition, true dependencies (thread cost): duration of
    /// CnC step executions that aborted on a failed blocking get — the
    /// wasted abort-and-retry thread time.
    pub blocked_stall_ns: u64,
    /// True dependencies, logical wait: blocked-get park to resume,
    /// summed over parked instances. Unlike `blocked_stall_ns` this
    /// does not occupy a thread (the instance waits off-CPU), so it can
    /// legitimately exceed the wall clock when many instances park.
    pub dep_wait_ns: u64,
    /// Fork-join tasks executed.
    pub tasks: u64,
    /// Fork-join tasks pushed or injected.
    pub spawns: u64,
    /// Tasks whose run event carries steal provenance.
    pub steals: u64,
    /// CnC step executions (all outcomes).
    pub steps: u64,
    /// CnC step executions that ended blocked/requeued.
    pub steps_requeued: u64,
    /// CnC transient-failure retries re-dispatched.
    pub retries: u64,
    /// Fork-join workers that died fail-stop mid-run.
    pub worker_deaths: u64,
    /// Tasks drained from dead workers' deques back to the injector.
    pub tasks_requeued: u64,
    /// Replacement workers spawned into dead workers' slots.
    pub worker_respawns: u64,
    /// Tile-output digest mismatches detected by the integrity layer.
    pub corruptions_detected: u64,
    /// Quarantined tiles recomputed from their pre-image.
    pub tiles_recomputed: u64,
    /// Events lost to lane-ring overflow (nonzero means the other
    /// numbers undercount).
    pub dropped_events: u64,
}

impl TraceReport {
    pub(crate) fn build(tracer: &Tracer, workers: usize) -> TraceReport {
        let workers = workers.max(1);
        let mut busy_all: Vec<(u64, u64)> = Vec::new();
        let mut idle_by_lane: Vec<Vec<(u64, u64)>> = Vec::new();
        let mut min_t = u64::MAX;
        let mut max_t = 0u64;
        let mut run_min = u64::MAX;
        let mut run_max = 0u64;
        let mut blocks: HashMap<u64, Vec<u64>> = HashMap::new();
        let mut resumes: HashMap<u64, Vec<u64>> = HashMap::new();
        let mut report = TraceReport {
            workers,
            wall_ns: 0,
            work_ns: 0,
            span_ns: 0,
            parallelism: 0.0,
            join_idle_ns: 0,
            park_ns: 0,
            starved_ns: 0,
            blocked_stall_ns: 0,
            dep_wait_ns: 0,
            tasks: 0,
            spawns: 0,
            steals: 0,
            steps: 0,
            steps_requeued: 0,
            retries: 0,
            worker_deaths: 0,
            tasks_requeued: 0,
            worker_respawns: 0,
            corruptions_detected: 0,
            tiles_recomputed: 0,
            dropped_events: 0,
        };
        for lane in tracer.lanes() {
            report.dropped_events += lane.dropped();
            let mut run: Vec<(u64, u64)> = Vec::new();
            let mut idle: Vec<(u64, u64)> = Vec::new();
            for event in lane.events() {
                min_t = min_t.min(event.t_ns);
                max_t = max_t.max(event.t_ns + event.dur_ns);
                match event.kind {
                    EventKind::TaskRun { source } => {
                        report.tasks += 1;
                        if matches!(source, TaskSource::Steal { .. }) {
                            report.steals += 1;
                        }
                        run_min = run_min.min(event.t_ns);
                        run_max = run_max.max(event.t_ns + event.dur_ns);
                        run.push((event.t_ns, event.t_ns + event.dur_ns));
                    }
                    EventKind::TaskSpawn => report.spawns += 1,
                    EventKind::JoinWait => {
                        report.join_idle_ns += event.dur_ns;
                        idle.push((event.t_ns, event.t_ns + event.dur_ns));
                    }
                    EventKind::Park => {
                        report.park_ns += event.dur_ns;
                        idle.push((event.t_ns, event.t_ns + event.dur_ns));
                    }
                    EventKind::StepRun { outcome, .. } => {
                        report.steps += 1;
                        if outcome == StepOutcomeKind::Requeued {
                            report.steps_requeued += 1;
                            report.blocked_stall_ns += event.dur_ns;
                        }
                        run_min = run_min.min(event.t_ns);
                        run_max = run_max.max(event.t_ns + event.dur_ns);
                        run.push((event.t_ns, event.t_ns + event.dur_ns));
                    }
                    EventKind::BlockedGet { instance } => {
                        blocks.entry(instance).or_default().push(event.t_ns);
                    }
                    EventKind::Resume { instance } => {
                        resumes.entry(instance).or_default().push(event.t_ns);
                    }
                    EventKind::StepRetry { .. } => report.retries += 1,
                    EventKind::WorkerDied { .. } => report.worker_deaths += 1,
                    EventKind::WorkRequeued { tasks, .. } => report.tasks_requeued += tasks,
                    EventKind::WorkerRespawned { .. } => report.worker_respawns += 1,
                    EventKind::CorruptionDetected { .. } => report.corruptions_detected += 1,
                    EventKind::TileRecomputed { .. } => report.tiles_recomputed += 1,
                }
            }
            // A lane is one thread, so its busy set is the union of its
            // execution spans (a helped task nests inside the helping
            // join's span; a CnC step nests inside the pool task that
            // ran it) minus the idle spans measured inside them.
            let idle = merge(idle);
            let busy = subtract(merge(run), &idle);
            report.work_ns += busy.iter().map(|&(s, e)| e - s).sum::<u64>();
            busy_all.extend(busy);
            idle_by_lane.push(idle);
        }
        // Window over executions (wall clamps to the workload, so a pool
        // parking idle before shutdown does not stretch the span).
        let window = if run_min <= run_max {
            Some((run_min, run_max))
        } else if min_t != u64::MAX && min_t <= max_t {
            Some((min_t, max_t))
        } else {
            None
        };
        if let Some((w0, w1)) = window {
            report.wall_ns = w1 - w0;
            report.span_ns = greedy_span(&busy_all, workers, (w0, w1));
            for idle in &idle_by_lane {
                report.starved_ns += idle
                    .iter()
                    .map(|&(s, e)| e.min(w1).saturating_sub(s.max(w0)))
                    .sum::<u64>();
            }
        }
        report.dep_wait_ns = pair_dep_waits(&mut blocks, &mut resumes);
        if report.span_ns > 0 {
            report.parallelism = report.work_ns as f64 / report.span_ns as f64;
        }
        report
    }
}

/// Sorts and unions a set of half-open intervals.
fn merge(mut intervals: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    intervals.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(intervals.len());
    for (s, e) in intervals {
        if e <= s {
            continue;
        }
        match out.last_mut() {
            Some((_, oe)) if s <= *oe => *oe = (*oe).max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// `a - b` for two merged interval sets.
fn subtract(a: Vec<(u64, u64)>, b: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut out = Vec::with_capacity(a.len());
    let mut j = 0;
    for (mut s, e) in a {
        while j < b.len() && b[j].1 <= s {
            j += 1;
        }
        let mut k = j;
        while s < e && k < b.len() && b[k].0 < e {
            if b[k].0 > s {
                out.push((s, b[k].0));
            }
            s = s.max(b[k].1);
            k += 1;
        }
        if s < e {
            out.push((s, e));
        }
    }
    out
}

/// Greedy-scheduler span estimate: total time inside `window` during
/// which fewer than `workers` intervals are active.
fn greedy_span(busy: &[(u64, u64)], workers: usize, window: (u64, u64)) -> u64 {
    let (w0, w1) = window;
    let mut points: Vec<(u64, i64)> = Vec::with_capacity(busy.len() * 2);
    for &(s, e) in busy {
        points.push((s, 1));
        points.push((e, -1));
    }
    // At equal timestamps the -1 sorts first, so back-to-back intervals
    // produce a zero-width dip that contributes nothing.
    points.sort_unstable();
    let mut span = 0u64;
    let mut active = 0i64;
    let mut prev = w0;
    for (t, delta) in points {
        let t = t.clamp(w0, w1);
        if t > prev && (active as usize) < workers {
            span += t - prev;
        }
        prev = prev.max(t);
        active += delta;
    }
    if w1 > prev {
        span += w1 - prev;
    }
    span
}

/// Pairs each blocked-get park with the next resume of the same
/// instance and sums the waits.
fn pair_dep_waits(
    blocks: &mut HashMap<u64, Vec<u64>>,
    resumes: &mut HashMap<u64, Vec<u64>>,
) -> u64 {
    let mut total = 0u64;
    for (instance, parks) in blocks.iter_mut() {
        let Some(fires) = resumes.get_mut(instance) else {
            continue; // parked forever (deadlock/cancel): no measurable wait
        };
        parks.sort_unstable();
        fires.sort_unstable();
        let mut fi = 0;
        for &park in parks.iter() {
            while fi < fires.len() && fires[fi] < park {
                fi += 1;
            }
            if fi == fires.len() {
                break;
            }
            total += fires[fi] - park;
            fi += 1;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceSession, Tracer};

    #[test]
    fn merge_unions_overlaps() {
        assert_eq!(
            merge(vec![(5, 9), (0, 2), (1, 4), (9, 9)]),
            vec![(0, 4), (5, 9)]
        );
    }

    #[test]
    fn subtract_cuts_holes() {
        let a = vec![(0, 10), (20, 30)];
        let b = vec![(2, 4), (8, 22), (28, 40)];
        assert_eq!(subtract(a, &b), vec![(0, 2), (4, 8), (22, 28)]);
    }

    #[test]
    fn greedy_span_counts_unsaturated_time() {
        // Two workers. busy: lane A [0,10), lane B [4,6).
        // Saturated (2 busy) only during [4,6) -> span = 10 - 2 = 8.
        let busy = vec![(0, 10), (4, 6)];
        assert_eq!(greedy_span(&busy, 2, (0, 10)), 8);
        // With one worker the [0,10) window is always saturated.
        assert_eq!(greedy_span(&busy, 1, (0, 10)), 0);
        // Gaps count toward the span.
        assert_eq!(greedy_span(&[(2, 4)], 1, (0, 10)), 8);
    }

    #[test]
    fn greedy_span_handles_adjacent_intervals() {
        // Back-to-back intervals on one lane under one worker: fully
        // saturated, no zero-width dip at the boundary.
        assert_eq!(greedy_span(&[(0, 5), (5, 10)], 1, (0, 10)), 0);
    }

    #[test]
    fn report_decomposes_synthetic_two_worker_run() {
        let tracer = Tracer::new();
        let w0 = tracer.register_lane("w0");
        let w1 = tracer.register_lane("w1");
        let step = tracer.intern("s");
        // w0: runs a task [0,100) that contains a join-wait [40,60).
        w0.record(
            EventKind::TaskRun {
                source: TaskSource::Inject,
            },
            0,
            100,
        );
        w0.record(EventKind::JoinWait, 40, 20);
        // w1: steals and runs [40,70), then a blocked step [70,80).
        w1.record(
            EventKind::TaskRun {
                source: TaskSource::Steal { victim: 0 },
            },
            40,
            30,
        );
        w1.record(
            EventKind::StepRun {
                step,
                tag: 1,
                outcome: StepOutcomeKind::Requeued,
            },
            70,
            10,
        );
        w1.record(EventKind::BlockedGet { instance: 7 }, 80, 0);
        w0.record(EventKind::Resume { instance: 7 }, 90, 0);

        let report = TraceSession::with_tracer(tracer, 2).report();
        assert_eq!(report.wall_ns, 100);
        // w0 busy: [0,40) u [60,100) = 80; w1 busy: [40,80) = 40.
        assert_eq!(report.work_ns, 120);
        // Both busy on [40,60)... w0 idle there. Busy counts:
        // [0,40): 1, [40,60): 1 (w1 only), [60,70): 2, [70,80): 2, [80,100): 1.
        // Span = time with <2 active = 40 + 20 + 20 = 80.
        assert_eq!(report.span_ns, 80);
        assert!((report.parallelism - 1.5).abs() < 1e-9);
        assert_eq!(report.join_idle_ns, 20);
        assert_eq!(report.starved_ns, 20, "the join wait is inside the window");
        assert_eq!(report.blocked_stall_ns, 10);
        assert_eq!(report.dep_wait_ns, 10);
        assert_eq!(report.tasks, 2);
        assert_eq!(report.steals, 1);
        assert_eq!(report.steps, 1);
        assert_eq!(report.steps_requeued, 1);
        assert_eq!(report.dropped_events, 0);
    }

    #[test]
    fn trailing_parks_do_not_stretch_the_window() {
        // A worker that keeps parking after the last task (the pool
        // idling before shutdown) must not inflate wall or span.
        let tracer = Tracer::new();
        let lane = tracer.register_lane("w0");
        lane.record(
            EventKind::TaskRun {
                source: TaskSource::Local,
            },
            0,
            100,
        );
        lane.record(EventKind::Park, 100, 5_000);
        let report = TraceSession::with_tracer(tracer, 1).report();
        assert_eq!(report.wall_ns, 100);
        assert_eq!(report.span_ns, 0, "one worker, fully saturated window");
        assert_eq!(
            report.park_ns, 5_000,
            "park time still counted in the decomposition"
        );
        assert_eq!(
            report.starved_ns, 0,
            "out-of-window parks are not starvation"
        );
    }

    #[test]
    fn mid_run_parks_count_as_starvation() {
        // Two workers; w1 parks across and past the window. Only the
        // in-window slice [10,100) of its park is starvation.
        let tracer = Tracer::new();
        let w0 = tracer.register_lane("w0");
        let w1 = tracer.register_lane("w1");
        w0.record(
            EventKind::TaskRun {
                source: TaskSource::Local,
            },
            0,
            100,
        );
        w1.record(EventKind::Park, 10, 200);
        let report = TraceSession::with_tracer(tracer, 2).report();
        assert_eq!(report.wall_ns, 100);
        assert_eq!(report.park_ns, 200);
        assert_eq!(report.starved_ns, 90);
    }

    #[test]
    fn empty_tracer_reports_zeros() {
        let report = TraceSession::new(4).report();
        assert_eq!(report.wall_ns, 0);
        assert_eq!(report.work_ns, 0);
        assert_eq!(report.span_ns, 0);
        assert_eq!(report.parallelism, 0.0);
    }

    #[test]
    fn unresumed_park_contributes_no_wait() {
        let tracer = Tracer::new();
        let lane = tracer.register_lane("w0");
        lane.record(EventKind::BlockedGet { instance: 1 }, 5, 0);
        let report = TraceSession::with_tracer(tracer, 1).report();
        assert_eq!(report.dep_wait_ns, 0);
    }
}
