//! Domain example: all-pairs shortest paths on a synthetic road network
//! with Floyd-Warshall — the paper's third benchmark in a realistic
//! setting.
//!
//! Builds a grid-like road network (local streets plus a few highways),
//! solves APSP in every execution model, and answers routing queries.
//!
//! ```sh
//! cargo run --release --example apsp_roadnet
//! ```

use recdp_suite::prelude::*;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use recdp_kernels::fw::{fw_cnc, fw_forkjoin, fw_loops};
use recdp_kernels::workloads::INF_DIST;

/// A `side x side` grid of intersections: streets connect neighbours
/// with integer travel times; a few random highways shortcut across.
fn road_network(side: usize, rng: &mut SmallRng) -> Matrix {
    let n = side * side;
    let mut m = Matrix::from_fn(n, |i, j| if i == j { 0.0 } else { INF_DIST });
    let idx = |r: usize, c: usize| r * side + c;
    for r in 0..side {
        for c in 0..side {
            let here = idx(r, c);
            if c + 1 < side {
                let w = rng.gen_range(2..8) as f64; // minutes per block
                m[(here, idx(r, c + 1))] = w;
                m[(idx(r, c + 1), here)] = w;
            }
            if r + 1 < side {
                let w = rng.gen_range(2..8) as f64;
                m[(here, idx(r + 1, c))] = w;
                m[(idx(r + 1, c), here)] = w;
            }
        }
    }
    for _ in 0..side {
        let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
        if a != b {
            m[(a, b)] = rng.gen_range(3..10) as f64; // one-way expressway
        }
    }
    m
}

fn main() {
    // 16x16 grid -> 256 intersections (a power of two, as R-DP wants).
    let side = 16;
    let mut rng = SmallRng::seed_from_u64(99);
    let network = road_network(side, &mut rng);
    let n = network.n();
    println!("== FW-APSP on a {side}x{side} road grid ({n} intersections) ==\n");

    let mut oracle = network.clone();
    fw_loops(&mut oracle);

    let pool = ThreadPoolBuilder::new().num_threads(2).build();
    let mut fj = network.clone();
    fw_forkjoin(&mut fj, 32, &pool);
    assert!(fj.bitwise_eq(&oracle));
    println!("fork-join R-DP matches the serial solver bit-for-bit");

    for variant in CncVariant::ALL {
        let mut df = network.clone();
        let stats = fw_cnc(&mut df, 32, variant, 2);
        assert!(df.bitwise_eq(&oracle));
        println!(
            "data-flow ({:<10}) matches ({} tile updates)",
            variant.label(),
            stats.items_put
        );
    }

    println!("\nsample routes (minutes):");
    let idx = |r: usize, c: usize| r * side + c;
    for (from, to, label) in [
        (idx(0, 0), idx(side - 1, side - 1), "corner to corner"),
        (idx(0, side - 1), idx(side - 1, 0), "other diagonal"),
        (idx(side / 2, 0), idx(side / 2, side - 1), "straight across"),
    ] {
        let d = oracle[(from, to)];
        println!("  {label:>18}: {d:>5.0}");
        assert!(d < INF_DIST, "grid is connected");
    }

    // Triangle inequality spot check over random triples.
    for _ in 0..1000 {
        let (i, j, k) = (
            rng.gen_range(0..n),
            rng.gen_range(0..n),
            rng.gen_range(0..n),
        );
        assert!(oracle[(i, j)] <= oracle[(i, k)] + oracle[(k, j)] + 1e-9);
    }
    println!("\ntriangle inequality verified over 1000 random triples");
}
