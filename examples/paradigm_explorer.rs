//! Paradigm explorer: interactively reproduces the paper's headline
//! conclusion using the simulation engine —
//!
//! * on a **fixed machine**, growing the problem size moves the winner
//!   from data-flow (CnC) to fork-join (OpenMP);
//! * for a **fixed problem**, moving to a machine with more cores moves
//!   the winner from fork-join to data-flow;
//! * for SW, the wavefront keeps data-flow ahead at every size.
//!
//! ```sh
//! cargo run --release --example paradigm_explorer
//! ```

use recdp_suite::prelude::*;
use recdp_suite::{predict_seconds, Benchmark, Paradigm};

fn winner(machine: &MachineConfig, benchmark: Benchmark, n: usize, m: usize) -> (String, f64, f64) {
    let cnc = predict_seconds(machine, benchmark, n, m, Paradigm::CncTuner);
    let omp = predict_seconds(machine, benchmark, n, m, Paradigm::OpenMp);
    let who = if cnc < omp { "CnC" } else { "OpenMP" };
    (who.to_string(), cnc, omp)
}

fn main() {
    let epyc = epyc64();
    let sky = skylake192();
    let base = 128;

    println!("== 1. fixed machine (EPYC-64), growing GE problem size ==");
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "n", "CnC (s)", "OpenMP (s)", "winner"
    );
    for n in [1024usize, 2048, 4096, 8192, 16384] {
        let (who, cnc, omp) = winner(&epyc, Benchmark::Ge, n, base);
        println!("{n:>8} {cnc:>12.4} {omp:>12.4} {who:>10}");
    }

    println!("\n== 2. fixed GE problem (4K), growing the machine ==");
    println!(
        "{:>14} {:>6} {:>12} {:>12} {:>10}",
        "machine", "cores", "CnC (s)", "OpenMP (s)", "winner"
    );
    for machine in [&epyc, &sky] {
        let (who, cnc, omp) = winner(machine, Benchmark::Ge, 4096, base);
        println!(
            "{:>14} {:>6} {cnc:>12.4} {omp:>12.4} {who:>10}",
            machine.name,
            machine.total_cores()
        );
    }

    println!("\n== 3. SW: the wavefront never lets fork-join catch up ==");
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "n", "CnC (s)", "OpenMP (s)", "winner"
    );
    let mut cnc_wins = 0;
    for n in [2048usize, 4096, 8192, 16384] {
        let (who, cnc, omp) = winner(&epyc, Benchmark::Sw, n, base);
        if who == "CnC" {
            cnc_wins += 1;
        }
        println!("{n:>8} {cnc:>12.4} {omp:>12.4} {who:>10}");
    }
    assert_eq!(cnc_wins, 4, "data-flow should win SW at every size");

    println!("\n== 4. where is the best base size? (GE 8K) ==");
    for machine in [&epyc, &sky] {
        let panel = FigurePanel::compute(
            machine,
            Benchmark::Ge,
            8192,
            &[64, 128, 256, 512, 1024, 2048],
            &[Paradigm::CncTuner, Paradigm::OpenMp],
        );
        println!(
            "{:>14}: best base for CnC_tuner = {:?}, for OpenMP = {:?}",
            machine.name,
            panel.best_base("CnC_tuner").unwrap(),
            panel.best_base("OpenMP").unwrap()
        );
    }
    println!("\n(the paper: best block sizes are 128-256 across variants)");
}
