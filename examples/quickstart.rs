//! Quickstart: run one DP benchmark under every execution model, verify
//! the results agree bit-for-bit, and compare the two models' task DAGs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use recdp_suite::prelude::*;
use recdp_suite::{dag_metrics, run_benchmark, Benchmark, Execution, Model};

fn main() {
    let (n, base, threads) = (256, 32, 2);
    println!("== recdp quickstart: Gaussian Elimination, n={n}, base={base} ==\n");

    // 1. Execute the same computation in every model.
    let executions = [
        Execution::SerialLoops,
        Execution::SerialRdp,
        Execution::ForkJoin,
        Execution::Cnc(CncVariant::Native),
        Execution::Cnc(CncVariant::Tuner),
        Execution::Cnc(CncVariant::Manual),
    ];
    let oracle = run_benchmark(Benchmark::Ge, Execution::SerialLoops, n, base, threads);
    for execution in executions {
        let out = run_benchmark(Benchmark::Ge, execution, n, base, threads);
        assert!(
            out.table.bitwise_eq(&oracle.table),
            "{} diverged",
            execution.label()
        );
        let extra = match &out.cnc_stats {
            Some(s) => format!(
                " (steps {}, requeued {}, requeue ratio {:.2})",
                s.steps_started,
                s.steps_requeued,
                s.requeue_ratio()
            ),
            None => String::new(),
        };
        println!(
            "{:>14}: {:.4}s, bitwise-identical{extra}",
            execution.label(),
            out.seconds
        );
    }

    // 2. The structural story: same work, different spans.
    println!(
        "\n== task-DAG structure (t = n/base = {} tiles per side) ==",
        n / base
    );
    let fj = dag_metrics(Benchmark::Ge, Model::ForkJoin, n / base, base);
    let df = dag_metrics(Benchmark::Ge, Model::DataFlow, n / base, base);
    println!(
        "fork-join: work {:.3e} flops, span {:.3e}, parallelism {:.1}",
        fj.work, fj.span, fj.parallelism
    );
    println!(
        "data-flow: work {:.3e} flops, span {:.3e}, parallelism {:.1}",
        df.work, df.span, df.parallelism
    );
    println!(
        "joins inflate the span {:.2}x — the paper's 'artificial dependencies'",
        fj.span / df.span
    );
}
