//! Domain example: DNA local alignment with Smith-Waterman — the use
//! case the paper's SW benchmark models.
//!
//! Aligns a simulated read (with mutations and an insertion) against a
//! reference fragment in every execution model, reports the alignment
//! score, and shows why the data-flow wavefront is the right engine for
//! this workload (Figs. 6-7).
//!
//! ```sh
//! cargo run --release --example sequence_alignment
//! ```

use recdp_suite::prelude::*;
use recdp_suite::{dag_metrics, Benchmark, Model};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use recdp_kernels::sw::{sw_cnc, sw_forkjoin, sw_loops, sw_score, sw_score_linear_space};
use recdp_kernels::workloads::dna_sequence;

/// Copies `reference` and introduces point mutations and a short
/// insertion, simulating a sequencing read.
fn mutate(reference: &[u8], rng: &mut SmallRng) -> Vec<u8> {
    let mut read = reference.to_vec();
    for _ in 0..reference.len() / 20 {
        let pos = rng.gen_range(0..read.len());
        read[pos] = b"ACGT"[rng.gen_range(0..4)];
    }
    // Short insertion, then truncate back to the power-of-two length the
    // R-DP variants expect.
    let pos = rng.gen_range(0..read.len());
    for _ in 0..4 {
        read.insert(pos, b'G');
    }
    read.truncate(reference.len());
    read
}

fn main() {
    let n = 512;
    let mut rng = SmallRng::seed_from_u64(2026);
    let reference = dna_sequence(n, 7);
    let read = mutate(&reference, &mut rng);
    println!("== Smith-Waterman local alignment, {n}-base read vs reference ==\n");

    // Ground truth, full table.
    let mut table = Matrix::zeros(n);
    sw_loops(&mut table, &read, &reference);
    let score = sw_score(&table);
    println!("alignment score (serial loops)     : {score}");
    println!(
        "alignment score (O(n)-space variant): {}",
        sw_score_linear_space(&read, &reference)
    );

    // Fork-join and data-flow produce the identical table.
    let pool = ThreadPoolBuilder::new().num_threads(2).build();
    let mut fj = Matrix::zeros(n);
    sw_forkjoin(&mut fj, &read, &reference, 64, &pool);
    assert!(fj.bitwise_eq(&table));
    println!("fork-join R-DP                     : identical table");

    for variant in CncVariant::ALL {
        let mut df = Matrix::zeros(n);
        let stats = sw_cnc(&mut df, &read, &reference, 64, variant, 2);
        assert!(df.bitwise_eq(&table));
        println!(
            "data-flow ({:<10})            : identical table, {} steps, {} requeues",
            variant.label(),
            stats.steps_started,
            stats.steps_requeued
        );
    }

    // Why data-flow wins SW: the wavefront vs the join pyramid.
    println!("\n== why the paper's Figs. 6-7 favour data-flow at every size ==");
    for t in [8usize, 32, 64] {
        let fj = dag_metrics(Benchmark::Sw, Model::ForkJoin, t, 64);
        let df = dag_metrics(Benchmark::Sw, Model::DataFlow, t, 64);
        println!(
            "t={t:>3}: span fork-join/data-flow = {:.2}x (critical path {} vs {} tiles)",
            fj.span / df.span,
            fj.critical_path_tasks,
            df.critical_path_tasks
        );
    }
    println!("\nthe fork-join span grows like t^1.585; the wavefront's like 2t-1.");
}
