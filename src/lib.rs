//! `recdp-suite`: the integration surface of the recdp reproduction —
//! re-exports the facade crate and hosts the workspace-level examples
//! (`examples/`) and integration tests (`tests/`).
//!
//! See the [`recdp`] crate for the API and the repository README for the
//! experiment catalogue.

pub use recdp::prelude;
pub use recdp::{
    dag, dag_metrics, predict_seconds, run_benchmark, run_benchmark_on, run_benchmark_with,
    Benchmark, Execution, FigurePanel, Model, Paradigm, RunOutput,
};
pub use recdp_server::{
    BatchMode, DpServer, JobHandle, JobSpec, ServerConfig, SubmitError, SwQuery,
};
