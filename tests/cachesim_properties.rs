//! Property tests on the cache simulator: LRU inclusion/stack
//! behaviour and hierarchy filtering invariants over random traces.

use proptest::prelude::*;
use recdp_cachesim::{CacheHierarchy, SetAssocCache};
use recdp_machine::{CacheGeometry, CacheLevel, WritePolicy};

fn level(name: &'static str, cap: usize, ways: usize) -> CacheLevel {
    CacheLevel {
        name,
        capacity_bytes: cap,
        line_bytes: 64,
        associativity: ways,
        miss_penalty_ns: 1.0,
        write_policy: WritePolicy::WriteBack,
        shared: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// LRU stack property (fully associative): a larger cache never
    /// misses more than a smaller one on the same trace.
    #[test]
    fn lru_inclusion(trace in prop::collection::vec(0u64..10_000, 1..400)) {
        let mut small = SetAssocCache::fully_associative("s", 16, 64);
        let mut large = SetAssocCache::fully_associative("l", 64, 64);
        for &a in &trace {
            small.access(a * 64);
            large.access(a * 64);
        }
        prop_assert!(large.stats().misses <= small.stats().misses);
    }

    /// Immediate re-access always hits, at every level.
    #[test]
    fn rereference_hits(trace in prop::collection::vec(0u64..100_000, 1..200)) {
        let geom = CacheGeometry::new(vec![level("L1", 4096, 4), level("L2", 65536, 8)], 50.0);
        let mut h = CacheHierarchy::new(&geom);
        for &a in &trace {
            h.access(a * 8);
            let hit = h.access(a * 8);
            prop_assert_eq!(hit, Some(0), "immediate rereference must hit L1");
        }
    }

    /// Hierarchy filtering: accesses at level i+1 equal misses at level
    /// i, and DRAM accesses equal last-level misses.
    #[test]
    fn traffic_filters_downward(trace in prop::collection::vec(0u64..50_000, 1..500)) {
        let geom = CacheGeometry::new(vec![level("L1", 4096, 4), level("L2", 65536, 8)], 50.0);
        let mut h = CacheHierarchy::new(&geom);
        for &a in &trace {
            h.access(a * 64);
        }
        let stats = h.stats();
        prop_assert_eq!(stats[1].accesses(), stats[0].misses);
        prop_assert_eq!(h.dram_accesses(), stats[1].misses);
        // Miss counts are monotone up the hierarchy.
        prop_assert!(stats[1].misses <= stats[0].misses);
    }

    /// Distinct-line count bounds the misses from below (compulsory
    /// misses) and the trace length bounds them from above.
    #[test]
    fn miss_count_bounds(trace in prop::collection::vec(0u64..5_000, 1..500)) {
        let geom = CacheGeometry::new(vec![level("L1", 4096, 4)], 50.0);
        let mut h = CacheHierarchy::new(&geom);
        let mut distinct = std::collections::HashSet::new();
        for &a in &trace {
            h.access(a * 64);
            distinct.insert(a);
        }
        let misses = h.stats()[0].misses;
        prop_assert!(misses >= distinct.len() as u64);
        prop_assert!(misses <= trace.len() as u64);
    }
}

#[test]
fn working_set_smaller_than_cache_only_cold_misses() {
    // Deterministic complement to the properties: 32 lines looping in a
    // 64-line fully associative cache -> exactly 32 misses over many
    // passes.
    let mut c = SetAssocCache::fully_associative("fa", 64, 64);
    for _ in 0..10 {
        for line in 0..32u64 {
            c.access(line * 64);
        }
    }
    assert_eq!(c.stats().misses, 32);
    assert_eq!(c.stats().hits, (9 * 32));
}
