//! Chaos suite: seeded fault plans against the real kernels on the real
//! CnC runtime.
//!
//! The contract under test is the resilience story end to end:
//!
//! * **correctness under chaos** — with a retry budget armed, every
//!   GE/SW/FW CnC variant absorbs seeded transient step failures and
//!   produces a table *bit-identical* to the fault-free oracle (faults
//!   are injected before the step body, so retries are idempotent);
//! * **structured failure, never a hang** — an exhausted retry budget, a
//!   deadline expiry and a cancellation each surface as the matching
//!   [`CncError`] variant;
//! * **actionable deadlock reports** — a dropped put turns into a
//!   deadlock diagnostic naming the blocked step and the exact
//!   collection/key it is parked on.
//!
//! Every scenario is replayable from the `u64` seed in its `FaultPlan`.

use std::sync::Arc;
use std::time::Duration;

use recdp::{run_benchmark_resilient, Benchmark, RecoveryPolicy, ResilienceOptions};
use recdp_cnc::{CncError, CncGraph, RetryPolicy, StepOutcome};
use recdp_faults::FaultPlan;
use recdp_forkjoin::{RecoveryMode, ThreadPoolBuilder};
use recdp_kernels::workloads::{dna_sequence, fw_matrix, ge_matrix};
use recdp_kernels::{fw, ge, sw, CncVariant, Matrix};

const N: usize = 64;
const BASE: usize = 16;
const THREADS: usize = 3;

fn chaos_graph(plan: FaultPlan, attempts: u32) -> CncGraph {
    let graph = CncGraph::with_threads(THREADS);
    graph.set_retry_policy(RetryPolicy::attempts(attempts));
    graph.set_fault_injector(Arc::new(plan));
    graph
}

#[test]
fn ge_all_variants_oracle_identical_under_faults() {
    let m0 = ge_matrix(N, 11);
    let mut oracle = m0.clone();
    ge::ge_loops(&mut oracle);
    for variant in CncVariant::ALL {
        for seed in [1u64, 0xBEEF, 0xDEAD_BEEF] {
            let graph = chaos_graph(FaultPlan::new(seed).transient_step_failures(0.25), 12);
            let mut m = m0.clone();
            let stats = ge::ge_cnc_on(&mut m, BASE, variant, &graph)
                .unwrap_or_else(|e| panic!("GE {variant:?} seed {seed:#x}: {e}"));
            assert!(
                m.bitwise_eq(&oracle),
                "GE {variant:?} seed {seed:#x} diverged"
            );
            assert!(
                stats.faults_injected > 0,
                "plan must actually bite: {stats:?}"
            );
            assert_eq!(stats.steps_retried, stats.faults_injected, "{stats:?}");
        }
    }
}

#[test]
fn sw_all_variants_oracle_identical_under_faults() {
    let a = dna_sequence(N, 21);
    let b = dna_sequence(N, 22);
    let mut oracle = Matrix::zeros(N);
    sw::sw_loops(&mut oracle, &a, &b);
    for variant in CncVariant::ALL {
        let graph = chaos_graph(FaultPlan::new(0x5EED).transient_step_failures(0.25), 12);
        let mut m = Matrix::zeros(N);
        let stats = sw::sw_cnc_on(&mut m, &a, &b, BASE, variant, &graph)
            .unwrap_or_else(|e| panic!("SW {variant:?}: {e}"));
        assert!(m.bitwise_eq(&oracle), "SW {variant:?} diverged");
        assert!(stats.faults_injected > 0, "{stats:?}");
    }
}

#[test]
fn fw_all_variants_oracle_identical_under_faults() {
    let m0 = fw_matrix(N, 31, 0.4);
    let mut oracle = m0.clone();
    fw::fw_loops(&mut oracle);
    for variant in CncVariant::ALL {
        let graph = chaos_graph(FaultPlan::new(0xF00D).transient_step_failures(0.25), 12);
        let mut m = m0.clone();
        let stats = fw::fw_cnc_on(&mut m, BASE, variant, &graph)
            .unwrap_or_else(|e| panic!("FW {variant:?}: {e}"));
        assert!(m.bitwise_eq(&oracle), "FW {variant:?} diverged");
        assert!(stats.faults_injected > 0, "{stats:?}");
    }
}

#[test]
fn chaos_runs_replay_identically_from_the_seed() {
    // Same seed -> same fault decisions -> identical statistics,
    // regardless of thread interleaving.
    let run = |threads: usize| {
        let graph = CncGraph::with_threads(threads);
        graph.set_retry_policy(RetryPolicy::attempts(12));
        graph.set_fault_injector(Arc::new(
            FaultPlan::new(0xCAFE).transient_step_failures(0.3),
        ));
        let mut m = ge_matrix(N, 5);
        ge::ge_cnc_on(&mut m, BASE, CncVariant::Manual, &graph).unwrap()
    };
    let a = run(1);
    let b = run(4);
    assert_eq!(a.faults_injected, b.faults_injected);
    assert_eq!(a.steps_retried, b.steps_retried);
}

#[test]
fn slow_and_delayed_chaos_still_converges() {
    // Delays (slow steps + delayed puts) perturb timing only; combined
    // with transient failures the run still matches the oracle, and the
    // replay-stable `steps_retried == faults_injected` invariant holds
    // even with delays enabled, because injected delays are tracked in
    // the separate (interleaving-dependent) `delays_injected` counter.
    let m0 = ge_matrix(N, 77);
    let mut oracle = m0.clone();
    ge::ge_loops(&mut oracle);
    let plan = FaultPlan::new(9)
        .transient_step_failures(0.15)
        .slow_steps(0.1, Duration::from_micros(100))
        .delayed_puts(0.1, Duration::from_micros(100));
    let graph = chaos_graph(plan, 12);
    let mut m = m0.clone();
    let stats = ge::ge_cnc_on(&mut m, BASE, CncVariant::Native, &graph).unwrap();
    assert!(m.bitwise_eq(&oracle));
    assert_eq!(stats.steps_retried, stats.faults_injected, "{stats:?}");
}

#[test]
fn delays_count_separately_from_faults() {
    // A delay-only plan fires on every execution but must leave
    // `faults_injected` (the replay-stable counter) untouched.
    let graph = CncGraph::with_threads(2);
    graph.set_fault_injector(Arc::new(
        FaultPlan::new(1).slow_steps(1.0, Duration::from_micros(50)),
    ));
    let tags = graph.tag_collection::<u32>("t");
    tags.prescribe("noop", |_, _| Ok(StepOutcome::Done));
    for i in 0..4 {
        tags.put(i);
    }
    let stats = graph.wait().unwrap();
    assert_eq!(stats.faults_injected, 0, "delays are not faults: {stats:?}");
    assert_eq!(stats.delays_injected, 4, "{stats:?}");
    assert_eq!(stats.steps_retried, 0, "{stats:?}");
}

#[test]
fn exhausted_retry_budget_is_structured_not_a_hang() {
    // A plan hot enough to out-fail a 2-attempt budget somewhere.
    let graph = chaos_graph(FaultPlan::new(123).transient_step_failures(0.95), 2);
    let mut m = ge_matrix(N, 1);
    match ge::ge_cnc_on(&mut m, BASE, CncVariant::Native, &graph) {
        Err(CncError::RetryExhausted {
            step,
            attempts,
            failure,
        }) => {
            assert_eq!(attempts, 2);
            assert!(!step.is_empty());
            assert!(failure.message.contains("seed"), "replay info: {failure}");
        }
        other => panic!("expected RetryExhausted, got {other:?}"),
    }
}

#[test]
fn deadline_expiry_is_structured_not_a_hang() {
    // A consumer parked on an item nobody produces, bounded by a
    // deadline armed on the graph: wait returns Timeout, not a hang.
    let graph = CncGraph::with_threads(2);
    graph.set_deadline(Duration::from_millis(50));
    let ghost = graph.item_collection::<u32, u32>("ghost");
    let tags = graph.tag_collection::<u32>("t");
    let gh = ghost.clone();
    tags.prescribe("starved", move |&n, s| {
        let _ = gh.get(s, &n)?;
        Ok(StepOutcome::Done)
    });
    tags.put(0);
    // Keep one instance genuinely pending (sleeping) so the graph is
    // neither quiescent nor deadlocked when the deadline fires.
    let busy = graph.tag_collection::<u32>("busy");
    busy.prescribe("sleeper", move |_, _| {
        std::thread::sleep(Duration::from_millis(400));
        Ok(StepOutcome::Done)
    });
    busy.put(0);
    match graph.wait() {
        Err(CncError::Timeout { deadline, .. }) => {
            assert_eq!(deadline, Duration::from_millis(50));
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
}

#[test]
fn cancellation_is_structured_not_a_hang() {
    let graph = CncGraph::with_threads(2);
    let token = graph.cancel_token();
    let tags = graph.tag_collection::<u32>("t");
    tags.prescribe("sleeper", move |_, _| {
        std::thread::sleep(Duration::from_millis(200));
        Ok(StepOutcome::Done)
    });
    for i in 0..16 {
        tags.put(i);
    }
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        token.cancel("operator abort");
    });
    match graph.wait() {
        Err(CncError::Cancelled { reason }) => assert_eq!(reason, "operator abort"),
        other => panic!("expected Cancelled, got {other:?}"),
    }
    canceller.join().unwrap();
}

#[test]
fn dropped_put_produces_actionable_deadlock_diagnostic() {
    // A fault plan that drops every put into the tile collection starves
    // downstream consumers; the deadlock diagnostic must name a blocked
    // step together with the collection and key it waits on.
    let graph = CncGraph::with_threads(2);
    graph.set_fault_injector(Arc::new(
        FaultPlan::new(4)
            .dropped_puts(1.0)
            .target_collections(&["link"]),
    ));
    let link = graph.item_collection::<u32, u64>("link");
    let tags = graph.tag_collection::<u32>("t");
    let lc = link.clone();
    tags.prescribe("produce", move |&n, _| {
        lc.put(n, n as u64)?; // dropped by the plan
        Ok(StepOutcome::Done)
    });
    let lc = link.clone();
    let consumers = graph.tag_collection::<u32>("c");
    consumers.prescribe("consume", move |&n, s| {
        let _ = lc.get(s, &n)?;
        Ok(StepOutcome::Done)
    });
    tags.put(7);
    consumers.put(7);
    match graph.wait() {
        Err(CncError::Deadlock {
            blocked_instances,
            diagnostic,
        }) => {
            assert_eq!(blocked_instances, 1);
            let w = diagnostic
                .waits
                .first()
                .expect("diagnostic names the blocked step");
            assert_eq!(w.step, "consume");
            assert_eq!(w.collection, "link");
            assert_eq!(w.key, "7");
            let rendered = diagnostic.render();
            assert!(
                rendered.contains("(consume)") && rendered.contains("[link]"),
                "{rendered}"
            );
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn worker_kill_chaos_all_benchmarks_match_oracle() {
    // Fail-stop chaos through the facade: seeded kill times fell real
    // worker threads mid-run on every benchmark (slow steps stretch the
    // run past both kill times), under both recovery policies. The
    // supervisor requeues the dead worker's deque, so the table still
    // matches the fault-free serial loops bit for bit.
    for bench in Benchmark::EXTENDED {
        let oracle = recdp::run_benchmark(bench, recdp::Execution::SerialLoops, N, BASE, 1);
        for recovery in [RecoveryPolicy::Respawn, RecoveryPolicy::Degrade] {
            let plan = FaultPlan::new(0x51AB)
                .slow_steps(1.0, Duration::from_micros(200))
                .kill_worker_at_ns(100_000)
                .kill_worker_at_ns(500_000);
            let worker_kills = plan.worker_kill_times_ns().to_vec();
            let opts = ResilienceOptions {
                injector: Some(Arc::new(plan)),
                worker_kills,
                recovery,
                ..Default::default()
            };
            let out = run_benchmark_resilient(bench, CncVariant::Native, N, BASE, THREADS, &opts)
                .unwrap_or_else(|e| panic!("{bench:?}/{recovery:?}: {e}"));
            assert!(
                out.table.bitwise_eq(&oracle.table),
                "{bench:?}/{recovery:?} diverged under worker kills"
            );
        }
    }
}

#[test]
fn cnc_on_a_kill_scheduled_pool_reports_the_deaths() {
    // Direct pool observation: a CnC run on a pool with a kill schedule
    // loses two workers mid-run, respawns both, and still matches the
    // oracle. Slow steps keep the graph busy past the second kill time.
    let pool = Arc::new(
        ThreadPoolBuilder::new()
            .num_threads(THREADS)
            .worker_kill_schedule(vec![100_000, 500_000])
            .recovery_mode(RecoveryMode::Respawn)
            .build(),
    );
    let graph = CncGraph::with_pool(Arc::clone(&pool));
    graph.set_fault_injector(Arc::new(
        FaultPlan::new(3).slow_steps(1.0, Duration::from_micros(300)),
    ));
    let m0 = ge_matrix(N, 11);
    let mut oracle = m0.clone();
    ge::ge_loops(&mut oracle);
    let mut m = m0.clone();
    ge::ge_cnc_on(&mut m, BASE, CncVariant::Native, &graph).expect("killed pool must converge");
    assert!(m.bitwise_eq(&oracle), "table diverged across worker deaths");
    assert_eq!(pool.worker_deaths(), 2, "both scheduled kills must bite");
    assert_eq!(pool.worker_respawns(), 2);
    assert_eq!(pool.alive_workers(), THREADS);
}

#[test]
fn resilient_executor_under_chaos_matches_oracle() {
    // The top-level facade: run_benchmark_resilient with a fault plan
    // produces the same table as the fault-free serial loops.
    let oracle = recdp::run_benchmark(Benchmark::Fw, recdp::Execution::SerialLoops, N, BASE, 1);
    let opts = ResilienceOptions {
        retry: RetryPolicy::attempts(10),
        deadline: Some(Duration::from_secs(60)),
        injector: Some(Arc::new(FaultPlan::new(0xAB).transient_step_failures(0.2))),
        ..Default::default()
    };
    let out = run_benchmark_resilient(Benchmark::Fw, CncVariant::Native, N, BASE, THREADS, &opts)
        .expect("retries absorb the plan");
    assert!(out.table.bitwise_eq(&oracle.table));
}
