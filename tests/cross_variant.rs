//! Cross-crate equivalence: every execution model must produce the
//! bitwise-identical DP table for every benchmark, across problem
//! shapes, base sizes and worker counts.

use proptest::prelude::*;
use recdp_kernels::{CncVariant, Decomposition};
use recdp_suite::{run_benchmark, run_benchmark_with, Benchmark, Execution};

const ALL_EXECUTIONS: [Execution; 5] = [
    Execution::SerialRdp,
    Execution::ForkJoin,
    Execution::Cnc(CncVariant::Native),
    Execution::Cnc(CncVariant::Tuner),
    Execution::Cnc(CncVariant::Manual),
];

#[test]
fn all_models_agree_at_moderate_size() {
    for benchmark in Benchmark::EXTENDED {
        let oracle = run_benchmark(benchmark, Execution::SerialLoops, 128, 16, 4);
        for execution in ALL_EXECUTIONS {
            let out = run_benchmark(benchmark, execution, 128, 16, 4);
            assert!(
                out.table.bitwise_eq(&oracle.table),
                "{} under {}",
                benchmark.name(),
                execution.label()
            );
        }
    }
}

#[test]
fn extreme_base_sizes() {
    for benchmark in Benchmark::EXTENDED {
        // base == n (single tile) and base == 1/2/4 (deep recursion).
        for (n, base) in [(64, 64), (64, 2), (32, 4)] {
            let oracle = run_benchmark(benchmark, Execution::SerialLoops, n, base, 2);
            for execution in ALL_EXECUTIONS {
                let out = run_benchmark(benchmark, execution, n, base, 2);
                assert!(
                    out.table.bitwise_eq(&oracle.table),
                    "{} under {} at n={n} base={base}",
                    benchmark.name(),
                    execution.label()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random shapes and thread counts: the equivalence is not an
    /// artifact of one lucky configuration.
    #[test]
    fn random_shapes_agree(
        n_exp in 5usize..8,          // n in {32, 64, 128}
        base_exp in 2usize..5,       // base in {4, 8, 16}
        threads in 1usize..5,
        bench_idx in 0usize..5,
        r_exp in 1usize..4,        // decomposition width in {2, 4, 8}
    ) {
        let n = 1 << n_exp;
        let base = 1 << base_exp.min(n_exp);
        let benchmark = Benchmark::EXTENDED[bench_idx];
        let oracle = run_benchmark(benchmark, Execution::SerialLoops, n, base, threads);
        let decomposition = Decomposition::new(1 << r_exp as u32);
        for execution in [
            Execution::ForkJoin,
            Execution::Cnc(CncVariant::Native),
            Execution::Cnc(CncVariant::Manual),
        ] {
            let out = run_benchmark_with(benchmark, execution, n, base, threads, decomposition);
            prop_assert!(
                out.table.bitwise_eq(&oracle.table),
                "{} under {} at n={} base={} threads={} r={}",
                benchmark.name(), execution.label(), n, base, threads, decomposition.r()
            );
        }
    }
}
