//! Determinism: CnC's dynamic single assignment makes the data-flow
//! programs deterministic (the property Budimlic et al. prove and the
//! paper leans on for debuggability); our runtimes must honour it
//! regardless of scheduling nondeterminism.

use recdp_kernels::{CncVariant, Decomposition};
use recdp_suite::{run_benchmark, run_benchmark_with, Benchmark, Execution};

#[test]
fn cnc_output_independent_of_thread_count() {
    for benchmark in Benchmark::EXTENDED {
        let reference = run_benchmark(benchmark, Execution::Cnc(CncVariant::Native), 64, 8, 1);
        for threads in [2usize, 3, 4, 8] {
            let out = run_benchmark(
                benchmark,
                Execution::Cnc(CncVariant::Native),
                64,
                8,
                threads,
            );
            assert!(
                out.table.bitwise_eq(&reference.table),
                "{} at {} threads",
                benchmark.name(),
                threads
            );
        }
    }
}

#[test]
fn forkjoin_output_independent_of_thread_count() {
    for benchmark in Benchmark::EXTENDED {
        let reference = run_benchmark(benchmark, Execution::ForkJoin, 64, 8, 1);
        for threads in [2usize, 4, 8] {
            let out = run_benchmark(benchmark, Execution::ForkJoin, 64, 8, threads);
            assert!(
                out.table.bitwise_eq(&reference.table),
                "{} at {} threads",
                benchmark.name(),
                threads
            );
        }
    }
}

#[test]
fn repeated_runs_are_stable() {
    // Scheduling noise across runs (steal order, requeue order) must not
    // leak into results.
    let first = run_benchmark(Benchmark::Ge, Execution::Cnc(CncVariant::Native), 64, 16, 4);
    for _ in 0..5 {
        let again = run_benchmark(Benchmark::Ge, Execution::Cnc(CncVariant::Native), 64, 16, 4);
        assert!(again.table.bitwise_eq(&first.table));
    }
}

#[test]
fn variants_agree_with_each_other() {
    for benchmark in Benchmark::EXTENDED {
        let native = run_benchmark(benchmark, Execution::Cnc(CncVariant::Native), 64, 16, 3);
        for variant in [CncVariant::Tuner, CncVariant::Manual] {
            let out = run_benchmark(benchmark, Execution::Cnc(variant), 64, 16, 3);
            assert!(out.table.bitwise_eq(&native.table), "{}", benchmark.name());
        }
    }
}

#[test]
fn completed_base_tasks_match_theory() {
    // Native GE at n=64, base=8 (t=8): the tag expansion must create
    // exactly t(t+1)(2t+1)/6 = 204 base tasks, each putting one item.
    let out = run_benchmark(Benchmark::Ge, Execution::Cnc(CncVariant::Native), 64, 8, 4);
    let stats = out.cnc_stats.expect("cnc stats");
    assert_eq!(stats.items_put, 204);
    // FW: full cube 8^3 = 512.
    let out = run_benchmark(Benchmark::Fw, Execution::Cnc(CncVariant::Native), 64, 8, 4);
    assert_eq!(out.cnc_stats.expect("cnc stats").items_put, 512);
    // SW: 8^2 = 64 tiles.
    let out = run_benchmark(Benchmark::Sw, Execution::Cnc(CncVariant::Native), 64, 8, 4);
    assert_eq!(out.cnc_stats.expect("cnc stats").items_put, 64);
    // Parenthesization: upper triangle, t(t+1)/2 = 36 tiles.
    let out = run_benchmark(
        Benchmark::Paren,
        Execution::Cnc(CncVariant::Native),
        64,
        8,
        4,
    );
    assert_eq!(out.cnc_stats.expect("cnc stats").items_put, 36);
    // LCS shares SW's wavefront: 8^2 = 64 tiles.
    let out = run_benchmark(Benchmark::Lcs, Execution::Cnc(CncVariant::Native), 64, 8, 4);
    assert_eq!(out.cnc_stats.expect("cnc stats").items_put, 64);
}

#[test]
fn output_independent_of_decomposition_width() {
    // The decomposition reshapes the recursion tree (and with it the
    // fork-join schedule), never the per-cell arithmetic: at every
    // width the output must stay bitwise-identical to the r = 2 run,
    // under both the fork-join and the data-flow engine.
    for benchmark in Benchmark::EXTENDED {
        for execution in [Execution::ForkJoin, Execution::Cnc(CncVariant::Native)] {
            let reference =
                run_benchmark_with(benchmark, execution, 64, 8, 3, Decomposition::BINARY);
            for r in [4u32, 8] {
                let out = run_benchmark_with(benchmark, execution, 64, 8, 3, Decomposition::new(r));
                assert!(
                    out.table.bitwise_eq(&reference.table),
                    "{} r={r} {:?}",
                    benchmark.name(),
                    execution
                );
            }
        }
    }
}
