//! Failure injection on the CnC runtime: deadlocks, single-assignment
//! violations and step failures must surface as structured errors, not
//! hangs or corruption.

use recdp_cnc::{CncError, CncGraph, DepSet, FailureKind, StepAbort, StepOutcome};

#[test]
fn unproduced_item_deadlocks_cleanly() {
    let g = CncGraph::with_threads(2);
    let ghost = g.item_collection::<u32, u32>("ghost");
    let tags = g.tag_collection::<u32>("t");
    let gh = ghost.clone();
    tags.prescribe("starved", move |&n, s| {
        let _ = gh.get(s, &n)?;
        Ok(StepOutcome::Done)
    });
    for i in 0..10 {
        tags.put(i);
    }
    match g.wait() {
        Err(CncError::Deadlock {
            blocked_instances,
            diagnostic,
        }) => {
            assert_eq!(blocked_instances, 10);
            // The wait-for diagnostic names every starved instance with
            // the collection and debug-rendered key it is parked on.
            assert_eq!(diagnostic.waits.len(), 10);
            assert!(diagnostic.waits.iter().all(|w| w.step == "starved"));
            assert!(diagnostic.waits.iter().all(|w| w.collection == "ghost"));
            let rendered = diagnostic.render();
            assert!(rendered.contains("[ghost]"), "{rendered}");
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn partial_deadlock_is_detected_after_progress() {
    // Half the chain resolves; the other half waits forever.
    let g = CncGraph::with_threads(2);
    let items = g.item_collection::<u32, u32>("items");
    let tags = g.tag_collection::<u32>("t");
    let it = items.clone();
    tags.prescribe("chain", move |&n, s| {
        let v = it.get(s, &n)?;
        // Items 0..5 exist; the rest never will.
        let _ = v;
        Ok(StepOutcome::Done)
    });
    for i in 0..5 {
        items.put(i, i).unwrap();
    }
    for i in 0..10 {
        tags.put(i);
    }
    match g.wait() {
        Err(CncError::Deadlock {
            blocked_instances,
            diagnostic,
        }) => {
            assert_eq!(blocked_instances, 5);
            // Only the starved keys 5..10 appear in the diagnostic.
            assert_eq!(diagnostic.waits.len(), 5);
            for w in &diagnostic.waits {
                let key: u32 = w.key.parse().expect("u32 debug-renders as itself");
                assert!(key >= 5, "resolved key {key} must not be reported");
            }
        }
        other => panic!("expected partial deadlock, got {other:?}"),
    }
}

#[test]
fn double_put_is_a_structured_error() {
    let g = CncGraph::with_threads(2);
    let items = g.item_collection::<(u32, u32), bool>("tiles");
    let tags = g.tag_collection::<u32>("t");
    let it = items.clone();
    tags.prescribe("dup", move |_, _| {
        // Every instance writes the same key: instance #2 violates DSA.
        it.put((7, 7), true)?;
        Ok(StepOutcome::Done)
    });
    tags.put(1);
    tags.put(2);
    match g.wait() {
        Err(CncError::SingleAssignmentViolation { collection, .. }) => {
            assert_eq!(collection, "tiles");
        }
        // The second put surfaces inside a step, which wraps it as a
        // step failure whose *source* is the violation — no stringly
        // flattening.
        Err(CncError::StepFailed { step, failure }) => {
            assert_eq!(step, "dup");
            match failure.source.as_deref() {
                Some(CncError::SingleAssignmentViolation { collection, .. }) => {
                    assert_eq!(*collection, "tiles");
                }
                other => panic!("expected preserved source error, got {other:?}"),
            }
        }
        other => panic!("expected violation, got {other:?}"),
    }
}

#[test]
fn failed_step_cancels_the_graph() {
    let g = CncGraph::with_threads(2);
    let tags = g.tag_collection::<u32>("t");
    tags.prescribe("sometimes-bad", move |&n, _| {
        if n == 3 {
            return Err(StepAbort::permanent("input 3 rejected"));
        }
        Ok(StepOutcome::Done)
    });
    for i in 0..100 {
        tags.put(i);
    }
    match g.wait() {
        Err(CncError::StepFailed { step, failure }) => {
            assert_eq!(step, "sometimes-bad");
            assert_eq!(failure.kind, FailureKind::Permanent);
            assert!(failure.message.contains("input 3 rejected"), "{failure}");
        }
        other => panic!("expected failure, got {other:?}"),
    }
}

#[test]
fn panic_in_one_step_reports_not_hangs() {
    let g = CncGraph::with_threads(3);
    let tags = g.tag_collection::<u32>("t");
    tags.prescribe("may-panic", move |&n, _| {
        if n == 17 {
            panic!("step 17 exploded");
        }
        Ok(StepOutcome::Done)
    });
    for i in 0..64 {
        tags.put(i);
    }
    match g.wait() {
        Err(CncError::StepPanicked(msg)) => assert!(msg.contains("exploded"), "{msg}"),
        other => panic!("expected panic report, got {other:?}"),
    }
}

#[test]
fn pre_scheduled_step_with_impossible_dep_deadlocks() {
    let g = CncGraph::with_threads(2);
    let items = g.item_collection::<u32, u32>("items");
    let tags = g.tag_collection::<u32>("t");
    tags.prescribe("never-runs", move |_, _| panic!("must not dispatch"));
    tags.put_when(0, &DepSet::new().item(&items, 42));
    match g.wait() {
        Err(CncError::Deadlock {
            blocked_instances, ..
        }) => assert_eq!(blocked_instances, 1),
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn graph_is_reusable_after_successful_wait() {
    let g = CncGraph::with_threads(2);
    let items = g.item_collection::<u32, u32>("out");
    let tags = g.tag_collection::<u32>("t");
    let it = items.clone();
    tags.prescribe("write", move |&n, _| {
        it.put(n, n * 2)?;
        Ok(StepOutcome::Done)
    });
    tags.put(1);
    g.wait().unwrap();
    // A second round of env puts on the same graph.
    tags.put(2);
    g.wait().unwrap();
    assert_eq!(items.get_env(&1), Some(2));
    assert_eq!(items.get_env(&2), Some(4));
}
