//! Fair-share scheduling properties of the job server, driven through
//! the public API only. The server's stride scheduler promises:
//!
//! * under saturating load from two tenants with 4:1 weights, the
//!   dispatch share converges to the weights (every prefix of the
//!   dispatch order is within a small additive tolerance of the ideal
//!   split) and neither tenant starves;
//! * priorities order jobs *within* a tenant — a high-priority job
//!   submitted last jumps its own tenant's queue — but never cross
//!   tenant boundaries, so a tenant flooding priority-100 jobs cannot
//!   push out a priority-0 neighbour.
//!
//! The submission interleaving is shuffled from a fixed seed: arrival
//! order across tenants must not matter to the steady-state shares.
//!
//! Determinism strategy: the server runs `max_inflight = 1`, so jobs
//! dispatch strictly one at a time in scheduler order, and every job
//! carries a full-rate `slow_steps` injector so each dispatch gap is
//! milliseconds wide. Each job's dispatch instant is reconstructed as
//! `submit_instant + queued_seconds` (both ends measured on this
//! thread's clock), which orders dispatches reliably because the gaps
//! dwarf the clock-capture skew.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use recdp::{Benchmark, Execution};
use recdp_faults::FaultPlan;
use recdp_kernels::CncVariant;
use recdp_server::{DpServer, JobHandle, JobSpec, ServerConfig};

const SEED: u64 = 0xFA1B_5EED;

fn server() -> DpServer {
    DpServer::new(ServerConfig {
        threads: 2,
        queue_depth: 256,
        max_inflight: 1,
        paused: true,
        trace_utilization: false,
    })
}

/// An equal-cost job whose every step sleeps, so back-to-back
/// dispatches are separated by milliseconds.
fn slow_job(tenant: &str) -> JobSpec {
    JobSpec::benchmark(
        tenant,
        Benchmark::Ge,
        Execution::Cnc(CncVariant::Tuner),
        32,
        16,
    )
    .with_injector(Arc::new(
        FaultPlan::new(SEED).slow_steps(1.0, Duration::from_millis(2)),
    ))
}

struct Submitted {
    tenant: &'static str,
    at: Instant,
    handle: JobHandle,
}

/// Waits for every handle and returns `(tenant, dispatch_instant)`
/// sorted into dispatch order.
fn dispatch_order(subs: Vec<Submitted>) -> Vec<(&'static str, Instant)> {
    let mut order: Vec<(&'static str, Instant)> = subs
        .into_iter()
        .map(|s| {
            let r = s.handle.wait().expect("healthy job");
            (s.tenant, s.at + Duration::from_secs_f64(r.queued_seconds))
        })
        .collect();
    order.sort_by_key(|&(_, at)| at);
    order
}

#[test]
fn weighted_share_converges_and_nobody_starves() {
    let server = server();
    server.set_tenant_weight("alpha", 4.0);
    server.set_tenant_weight("bravo", 1.0);

    // 32 alpha + 8 bravo equal-cost jobs, interleaved pseudo-randomly
    // from the fixed seed, all queued while the server is paused so the
    // scheduler sees one saturating backlog.
    let mut rng = SmallRng::seed_from_u64(SEED);
    let (mut alpha_left, mut bravo_left) = (32u32, 8u32);
    let mut subs = Vec::new();
    while alpha_left + bravo_left > 0 {
        let tenant = if rng.gen_range(0..alpha_left + bravo_left) < alpha_left {
            alpha_left -= 1;
            "alpha"
        } else {
            bravo_left -= 1;
            "bravo"
        };
        subs.push(Submitted {
            tenant,
            at: Instant::now(),
            handle: server.submit(slow_job(tenant)).expect("queue has room"),
        });
    }
    server.resume();
    let order = dispatch_order(subs);
    assert_eq!(order.len(), 40);

    // Convergence: every prefix of the dispatch order splits within
    // +/-2 jobs of the ideal 4:1 share. Both tenants stay backlogged
    // for the whole run (alpha holds exactly 80% of the jobs), so the
    // property must hold to the last dispatch.
    for k in 10..=order.len() {
        let alpha_k = order[..k].iter().filter(|(t, _)| *t == "alpha").count() as f64;
        let ideal = 0.8 * k as f64;
        assert!(
            (alpha_k - ideal).abs() <= 2.0,
            "prefix {k}: alpha got {alpha_k} dispatches, ideal {ideal} \
             (order: {:?})",
            order.iter().map(|(t, _)| *t).collect::<Vec<_>>()
        );
    }

    // Starvation bound: the weight-1 tenant is never locked out for
    // more than a full stride cycle (ideal pattern repeats every 5
    // dispatches; allow 8 for scheduling slack).
    let bravo_at: Vec<usize> = order
        .iter()
        .enumerate()
        .filter(|(_, (t, _))| *t == "bravo")
        .map(|(i, _)| i)
        .collect();
    let mut last = 0usize;
    for &i in &bravo_at {
        assert!(
            i - last <= 8,
            "bravo starved for {} consecutive dispatches",
            i - last
        );
        last = i;
    }

    let alpha = server.tenant_stats("alpha").unwrap();
    let bravo = server.tenant_stats("bravo").unwrap();
    assert_eq!(alpha.completed, 32);
    assert_eq!(bravo.completed, 8);
    assert_eq!(alpha.weight, 4.0);
    assert!(alpha.work_charged > 0.0 && bravo.work_charged > 0.0);
    server.shutdown();
}

/// Within one tenant, a high-priority job submitted *last* must
/// dispatch *first*, and equal-priority jobs keep submission order —
/// the regression case for priority inversion through the stride
/// scheduler's within-tenant ordering.
#[test]
fn high_priority_job_jumps_its_tenants_queue() {
    let server = server();
    let mut subs = Vec::new();
    for _ in 0..5 {
        subs.push(Submitted {
            tenant: "background",
            at: Instant::now(),
            handle: server.submit(slow_job("solo")).expect("queue has room"),
        });
    }
    subs.push(Submitted {
        tenant: "urgent",
        at: Instant::now(),
        handle: server
            .submit(slow_job("solo").with_priority(10))
            .expect("queue has room"),
    });
    server.resume();
    let order = dispatch_order(subs);
    assert_eq!(
        order[0].0,
        "urgent",
        "the priority-10 job submitted last must dispatch first \
         (order: {:?})",
        order.iter().map(|(t, _)| *t).collect::<Vec<_>>()
    );
    assert!(
        order[1..].iter().all(|(t, _)| *t == "background"),
        "exactly one urgent job was submitted"
    );
    server.shutdown();
}

/// Priorities must not cross tenant boundaries: a tenant flooding
/// priority-100 jobs still splits dispatches ~50:50 with an
/// equal-weight tenant submitting at priority 0.
#[test]
fn priorities_do_not_breach_fair_share_isolation() {
    let server = server();
    server.set_tenant_weight("noisy", 1.0);
    server.set_tenant_weight("meek", 1.0);
    let mut subs = Vec::new();
    // All of noisy's jobs arrive first *and* at maximum priority — the
    // worst case for the meek tenant.
    for _ in 0..8 {
        subs.push(Submitted {
            tenant: "noisy",
            at: Instant::now(),
            handle: server
                .submit(slow_job("noisy").with_priority(100))
                .expect("queue has room"),
        });
    }
    for _ in 0..8 {
        subs.push(Submitted {
            tenant: "meek",
            at: Instant::now(),
            handle: server.submit(slow_job("meek")).expect("queue has room"),
        });
    }
    server.resume();
    let order = dispatch_order(subs);
    for k in 4..=order.len() {
        let noisy_k = order[..k].iter().filter(|(t, _)| *t == "noisy").count() as f64;
        let ideal = k as f64 / 2.0;
        assert!(
            (noisy_k - ideal).abs() <= 2.0,
            "prefix {k}: noisy got {noisy_k} dispatches despite equal \
             weights (order: {:?})",
            order.iter().map(|(t, _)| *t).collect::<Vec<_>>()
        );
    }
    server.shutdown();
}
