//! Property tests on the numeric kernels: algebraic invariants that
//! must hold for any input, not just the seeded fixtures.

use proptest::prelude::*;
use recdp_kernels::workloads::{dna_sequence, fw_matrix, ge_matrix, INF_DIST};
use recdp_kernels::{fw, ge, sw, Matrix};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// FW output is a metric closure: triangle inequality and shrunken
    /// distances, for arbitrary seeds/densities.
    #[test]
    fn fw_produces_metric_closure(seed in any::<u64>(), density in 0.05f64..0.9) {
        let n = 16;
        let before = fw_matrix(n, seed, density);
        let mut after = before.clone();
        fw::fw_loops(&mut after);
        for i in 0..n {
            prop_assert_eq!(after[(i, i)], 0.0);
            for j in 0..n {
                prop_assert!(after[(i, j)] <= before[(i, j)]);
                for k in 0..n {
                    prop_assert!(
                        after[(i, j)] <= after[(i, k)] + after[(k, j)] + 1e-9,
                        "triangle at ({}, {}, {})", i, k, j
                    );
                }
            }
        }
    }

    /// R-DP FW equals loop FW for random shapes (the cross-variant
    /// bitwise property, under proptest's input control).
    #[test]
    fn fw_rdp_equals_loops(seed in any::<u64>(), base_exp in 0usize..4) {
        let n = 16;
        let base = 1 << base_exp; // 1, 2, 4, 8
        let m0 = fw_matrix(n, seed, 0.4);
        let mut lo = m0.clone();
        fw::fw_loops(&mut lo);
        let mut re = m0.clone();
        fw::fw_rdp(&mut re, base);
        prop_assert!(re.bitwise_eq(&lo));
    }

    /// GE leaves the input row space intact in the sense that pivots
    /// stay nonzero for diagonally dominant inputs, for any seed.
    #[test]
    fn ge_pivots_stay_nonzero(seed in any::<u64>()) {
        let n = 16;
        let mut m = ge_matrix(n, seed);
        ge::ge_loops(&mut m);
        for k in 0..n {
            prop_assert!(m[(k, k)].abs() > 1e-9, "pivot {} vanished", k);
            prop_assert!(m[(k, k)].is_finite());
        }
    }

    /// GE R-DP equals loop GE for random seeds and bases.
    #[test]
    fn ge_rdp_equals_loops(seed in any::<u64>(), base_exp in 0usize..5) {
        let n = 16;
        let base = 1 << base_exp.min(4);
        let m0 = ge_matrix(n, seed);
        let mut lo = m0.clone();
        ge::ge_loops(&mut lo);
        let mut re = m0.clone();
        ge::ge_rdp(&mut re, base);
        prop_assert!(re.bitwise_eq(&lo));
    }

    /// SW scores are bounded by the perfect-match score and are
    /// symmetric in the sequences (score(a,b) == score(b,a) for the
    /// symmetric scoring scheme).
    #[test]
    fn sw_score_bounds_and_symmetry(sa in any::<u64>(), sb in any::<u64>()) {
        let n = 32;
        let a = dna_sequence(n, sa);
        let b = dna_sequence(n, sb);
        let mut tab = Matrix::zeros(n);
        sw::sw_loops(&mut tab, &a, &b);
        let score = sw::sw_score(&tab);
        prop_assert!(score >= 0.0);
        prop_assert!(score <= sw::MATCH * n as f64);
        let mut tba = Matrix::zeros(n);
        sw::sw_loops(&mut tba, &b, &a);
        prop_assert_eq!(score.to_bits(), sw::sw_score(&tba).to_bits());
    }

    /// Appending characters to both sequences never lowers the best
    /// local-alignment score (monotonicity of local alignment under
    /// extension).
    #[test]
    fn sw_score_monotone_under_extension(seed in any::<u64>()) {
        let long_a = dna_sequence(64, seed);
        let long_b = dna_sequence(64, seed ^ 0xABCD);
        let short = sw::sw_score_linear_space(&long_a[..32], &long_b[..32]);
        let long = sw::sw_score_linear_space(&long_a, &long_b);
        prop_assert!(long >= short, "{long} >= {short}");
    }
}

#[test]
fn fw_disconnected_components_stay_disconnected() {
    // Two 8-node cliques with no cross edges: cross distances stay INF.
    let n = 16;
    let mut m = Matrix::from_fn(n, |i, j| {
        if i == j {
            0.0
        } else if (i < 8) == (j < 8) {
            1.0
        } else {
            INF_DIST
        }
    });
    fw::fw_loops(&mut m);
    for i in 0..8 {
        for j in 8..16 {
            assert!(m[(i, j)] >= INF_DIST, "no path may cross components");
        }
    }
}
