//! The paper's idle-time claim, measured instead of modeled: on GE the
//! fork-join execution loses more thread time to *artificial
//! dependencies* than the data-flow execution loses to *true* ones.
//!
//! Where that time shows up surprised us and is worth recording. The
//! owner of a stolen join branch almost never waits at the join itself:
//! branches are balanced, thieves are hungry, and by the time the owner
//! finishes its inline branch the stolen one is done — `join_idle_ns`
//! is ~0 (the helping protocol hides owner-side waits). The cost
//! surfaces one level up, as *starvation*: mid-run, whole recursion
//! stages are serialized by join barriers, the pool has fewer exposed
//! tasks than workers, and the surplus workers park. `starved_ns`
//! (in-window idle) captures exactly that. Under fork-join every
//! mid-run park is artificial — the DAG's true width at those instants
//! is higher, joins just hide it; under data-flow a mid-run park or a
//! blocked-get abort means a *real* producer has not finished. That is
//! Sec. III's structural argument, validated on the real runtimes via
//! `recdp-trace`.

use recdp::prelude::*;

const N: usize = 256;
const BASE: usize = 16;
const THREADS: usize = 4;

fn measure() -> (TraceReport, TraceReport) {
    let (_, fj) = run_benchmark_traced(Benchmark::Ge, Execution::ForkJoin, N, BASE, THREADS);
    let (_, cnc) = run_benchmark_traced(
        Benchmark::Ge,
        Execution::Cnc(CncVariant::Native),
        N,
        BASE,
        THREADS,
    );
    (fj.report(), cnc.report())
}

#[test]
fn forkjoin_artificial_idle_exceeds_cnc_true_dependency_cost_on_ge() {
    // Timing-based, so allow a few attempts before declaring the claim
    // violated; the margin is structural (GE's join barriers serialise
    // whole recursion levels, starving most of the pool) and holds on
    // any non-degenerate run.
    let mut last = None;
    for _ in 0..3 {
        let (fj, cnc) = measure();
        assert!(fj.tasks > 0, "fork-join run recorded no tasks");
        assert!(cnc.steps > 0, "cnc run recorded no steps");
        // All fork-join in-window idle is artificial-dependency stall
        // (plus any owner-side join waits the window clipping missed);
        // the data-flow side gets charged both its in-window idle *and*
        // the thread time burnt on blocked-get abort-and-retry.
        let fj_artificial = fj.starved_ns + fj.join_idle_ns;
        let cnc_true_dep = cnc.starved_ns + cnc.blocked_stall_ns;
        if fj_artificial > cnc_true_dep {
            return;
        }
        last = Some((fj, cnc));
    }
    let (fj, cnc) = last.unwrap();
    panic!(
        "fork-join artificial idle ({} ns starved + {} ns join waits) did \
         not exceed cnc true-dependency cost ({} ns starved + {} ns \
         blocked-get stall) in 3 attempts\nfj: {fj:?}\ncnc: {cnc:?}",
        fj.starved_ns, fj.join_idle_ns, cnc.starved_ns, cnc.blocked_stall_ns
    );
}

#[test]
fn measured_parallelism_is_sane_on_both_models() {
    let (fj, cnc) = measure();
    for (label, r) in [("forkjoin", &fj), ("cnc", &cnc)] {
        assert!(r.work_ns > 0, "{label}: no work recorded");
        assert!(
            r.span_ns > 0 && r.span_ns <= r.wall_ns,
            "{label}: span {} outside (0, wall {}]",
            r.span_ns,
            r.wall_ns
        );
        assert!(r.parallelism > 0.0, "{label}: zero measured parallelism");
        assert!(
            r.work_ns <= THREADS as u64 * r.wall_ns,
            "{label}: busy time {} exceeds {} threads x wall {}",
            r.work_ns,
            THREADS,
            r.wall_ns
        );
        assert!(
            r.starved_ns <= THREADS as u64 * r.wall_ns,
            "{label}: starved time {} exceeds {} threads x wall {}",
            r.starved_ns,
            THREADS,
            r.wall_ns
        );
    }
}
