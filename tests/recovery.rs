//! Fail-stop recovery coverage for the generic [`DpSpec`] engines on
//! all four benchmarks (GE, SW, FW, parenthesization).
//!
//! Three failure shapes, each proven against the serial-loops oracle:
//!
//! * **step panics under CnC** — a poisoned tile panics mid-run; the
//!   graph fail-fasts into a structured [`CncError::StepPanicked`]
//!   (never a hang), the dead graph is checkpointed, and a resumed
//!   graph finishes the job re-executing only unproduced steps. This
//!   is sound *because* items are single-assignment: every tile the
//!   checkpoint marks executed has its (only possible) value in the
//!   snapshot, so skipping it cannot change the table.
//! * **step panics under fork-join** — the same poisoned tile unwinds
//!   out of [`run_forkjoin`] as a propagated panic; a fresh disarmed
//!   run completes normally.
//! * **worker kills under fork-join** — seeded fail-stop kill times
//!   fell real worker threads mid-run; the supervisor requeues the
//!   dead worker's deque and (per [`RecoveryMode`]) respawns or
//!   degrades, and the table still matches the oracle bit for bit.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use recdp_cnc::{CncError, CncGraph};
use recdp_forkjoin::{RecoveryMode, ThreadPoolBuilder};
use recdp_kernels::engine::{run_cnc_on, run_forkjoin};
use recdp_kernels::workloads::{chain_dims, dna_sequence, fw_matrix, ge_matrix};
use recdp_kernels::{fw, ge, paren, sw, Call, CncVariant, DpSpec, Matrix, TileKey};

const N: usize = 64;
const BASE: usize = 16;
const THREADS: usize = 3;
const SEED: u64 = 0xD1CE;

/// Wraps any spec so that one `poison` tile panics the first time it
/// runs (a fail-stop bad step), with an optional per-tile `slow` delay
/// to stretch the run past scheduled worker-kill times. The `armed`
/// flag is shared across clones, so exactly one execution panics no
/// matter which engine or worker reaches the tile first.
#[derive(Clone)]
struct PoisonTile<S: DpSpec> {
    inner: S,
    poison: Option<TileKey>,
    armed: Arc<AtomicBool>,
    slow: Duration,
}

impl<S: DpSpec> PoisonTile<S> {
    /// Poisons the tile of the middle entry of `manual_calls` — a tile
    /// deep enough that work exists both before and after the panic.
    fn mid(inner: S) -> Self {
        let calls = inner.manual_calls();
        let poison = inner.tile(&calls[calls.len() / 2]);
        PoisonTile {
            inner,
            poison: Some(poison),
            armed: Arc::new(AtomicBool::new(true)),
            slow: Duration::ZERO,
        }
    }

    /// No poison at all — just a per-tile delay, to keep the run alive
    /// long enough for scheduled worker kills to bite.
    fn slow(inner: S, delay: Duration) -> Self {
        PoisonTile {
            inner,
            poison: None,
            armed: Arc::new(AtomicBool::new(false)),
            slow: delay,
        }
    }
}

impl<S: DpSpec> DpSpec for PoisonTile<S> {
    fn func_names(&self) -> &'static [&'static str] {
        self.inner.func_names()
    }
    fn step_names(&self) -> &'static [&'static str] {
        self.inner.step_names()
    }
    fn item_name(&self) -> &'static str {
        self.inner.item_name()
    }
    fn t_tiles(&self) -> u32 {
        self.inner.t_tiles()
    }
    fn root(&self) -> Call {
        self.inner.root()
    }
    fn expand(&self, call: &Call) -> Vec<Vec<Call>> {
        self.inner.expand(call)
    }
    fn tile(&self, call: &Call) -> TileKey {
        self.inner.tile(call)
    }
    fn reads(&self, tile: TileKey) -> Vec<TileKey> {
        self.inner.reads(tile)
    }
    fn manual_calls(&self) -> Vec<Call> {
        self.inner.manual_calls()
    }
    unsafe fn run_tile(&self, tile: TileKey) {
        if !self.slow.is_zero() {
            std::thread::sleep(self.slow);
        }
        if self.poison == Some(tile) && self.armed.swap(false, Ordering::SeqCst) {
            panic!("poisoned tile {tile:?}");
        }
        self.inner.run_tile(tile)
    }
}

/// CnC engine: the poisoned run fail-fasts into `StepPanicked`, the
/// dead graph checkpoints, and the resumed (now disarmed) run finishes
/// with exactly the checkpointed steps skipped.
fn cnc_panic_then_checkpoint_resume<S: DpSpec>(
    name: &str,
    fresh: &dyn Fn() -> Matrix,
    spec: &dyn Fn(&mut Matrix) -> S,
    loops: &dyn Fn(&mut Matrix),
) {
    let mut oracle = fresh();
    loops(&mut oracle);

    let mut m = fresh();
    let sp = PoisonTile::mid(spec(&mut m));
    let graph = CncGraph::with_threads(THREADS);
    match run_cnc_on(&sp, CncVariant::Native, &graph) {
        Err(CncError::StepPanicked(msg)) => {
            assert!(msg.contains("poisoned tile"), "{name}: {msg}");
        }
        other => panic!("{name}: expected StepPanicked, got {other:?}"),
    }
    let cp = graph.checkpoint();
    drop(graph);

    // The poison disarmed itself on the panicking execution; resume the
    // same program (same wrapped spec, same table) on a fresh graph.
    let resumed = CncGraph::with_threads(THREADS);
    resumed.resume_from(&cp);
    let stats = run_cnc_on(&sp, CncVariant::Native, &resumed)
        .unwrap_or_else(|e| panic!("{name}: resumed run must complete: {e:?}"));
    assert_eq!(
        stats.steps_skipped,
        cp.executed_steps() as u64,
        "{name}: resume must skip exactly the checkpointed steps"
    );
    assert_eq!(stats.items_restored, cp.items() as u64, "{name}");
    assert!(
        m.bitwise_eq(&oracle),
        "{name}: resumed table diverged from the serial-loops oracle"
    );
}

/// Fork-join engine: the poisoned tile's panic propagates out of the
/// pool (never a hang), and a disarmed rerun on a fresh table matches
/// the oracle.
fn forkjoin_panic_propagates<S: DpSpec>(
    name: &str,
    fresh: &dyn Fn() -> Matrix,
    spec: &dyn Fn(&mut Matrix) -> S,
    loops: &dyn Fn(&mut Matrix),
) {
    let mut oracle = fresh();
    loops(&mut oracle);

    let pool = ThreadPoolBuilder::new().num_threads(THREADS).build();
    let mut m = fresh();
    let sp = PoisonTile::mid(spec(&mut m));
    let unwound = catch_unwind(AssertUnwindSafe(|| run_forkjoin(&sp, &pool)));
    assert!(unwound.is_err(), "{name}: tile panic must propagate");

    // Kernels mutate tiles in place, so the half-written table is not
    // restartable; a *fresh* table with the (disarmed) spec completes.
    let mut m2 = fresh();
    let sp2 = PoisonTile {
        inner: spec(&mut m2),
        ..sp.clone()
    };
    run_forkjoin(&sp2, &pool);
    assert!(m2.bitwise_eq(&oracle), "{name}: disarmed rerun diverged");
}

/// Fork-join engine under scheduled worker kills: per-tile delays keep
/// the job alive past both kill times, dead workers' deques are
/// requeued, and the table still matches the oracle. Respawn restores
/// the pool's width; degrade shrinks it.
fn forkjoin_kills_preserve_results<S: DpSpec>(
    name: &str,
    fresh: &dyn Fn() -> Matrix,
    spec: &dyn Fn(&mut Matrix) -> S,
    loops: &dyn Fn(&mut Matrix),
) {
    let mut oracle = fresh();
    loops(&mut oracle);
    for mode in [RecoveryMode::Respawn, RecoveryMode::Degrade] {
        let pool = ThreadPoolBuilder::new()
            .num_threads(THREADS)
            .worker_kill_schedule(vec![50_000, 300_000])
            .recovery_mode(mode)
            .build();
        let mut m = fresh();
        let sp = PoisonTile::slow(spec(&mut m), Duration::from_micros(100));
        run_forkjoin(&sp, &pool);
        assert!(
            m.bitwise_eq(&oracle),
            "{name}/{mode:?}: table diverged after worker kills"
        );
        assert!(
            pool.worker_deaths() >= 1,
            "{name}/{mode:?}: the kill schedule never bit"
        );
        match mode {
            RecoveryMode::Respawn => {
                assert_eq!(pool.worker_respawns(), pool.worker_deaths(), "{name}");
                assert_eq!(pool.alive_workers(), THREADS, "{name}");
            }
            RecoveryMode::Degrade => {
                assert_eq!(pool.worker_respawns(), 0, "{name}");
                assert_eq!(
                    pool.alive_workers(),
                    THREADS - pool.worker_deaths(),
                    "{name}"
                );
            }
        }
    }
}

/// Runs all three failure shapes for one benchmark.
fn full_recovery_suite<S: DpSpec>(
    name: &str,
    fresh: &dyn Fn() -> Matrix,
    spec: &dyn Fn(&mut Matrix) -> S,
    loops: &dyn Fn(&mut Matrix),
) {
    cnc_panic_then_checkpoint_resume(name, fresh, spec, loops);
    forkjoin_panic_propagates(name, fresh, spec, loops);
    forkjoin_kills_preserve_results(name, fresh, spec, loops);
}

#[test]
fn ge_recovers_from_panics_and_worker_kills() {
    full_recovery_suite(
        "GE",
        &|| ge_matrix(N, SEED),
        &|m| ge::GeSpec::new(m.ptr(), BASE),
        &|m| ge::ge_loops(m),
    );
}

#[test]
fn sw_recovers_from_panics_and_worker_kills() {
    let a = dna_sequence(N, SEED);
    let b = dna_sequence(N, SEED ^ 0xFFFF);
    full_recovery_suite(
        "SW",
        &|| Matrix::zeros(N),
        &|m| sw::SwSpec::new(m.ptr(), &a, &b, BASE),
        &|m| sw::sw_loops(m, &a, &b),
    );
}

#[test]
fn fw_recovers_from_panics_and_worker_kills() {
    full_recovery_suite(
        "FW",
        &|| fw_matrix(N, SEED, 0.35),
        &|m| fw::FwSpec::new(m.ptr(), BASE),
        &|m| fw::fw_loops(m),
    );
}

#[test]
fn paren_recovers_from_panics_and_worker_kills() {
    // The parenthesization spec's tiles read Θ(t) other tiles (the
    // full i-k / k-j chains), so a requeued tile task exercises the
    // longest dependency re-checks of the four benchmarks.
    let dims = chain_dims(N, SEED);
    full_recovery_suite(
        "PAREN",
        &|| Matrix::zeros(N),
        &|m| paren::ParenSpec::new(m.ptr(), &dims, BASE),
        &|m| paren::paren_loops(m, &dims),
    );
}
