//! Stress tests of the two runtimes under awkward concurrency shapes:
//! nesting, sharing, interleaving and high fan-out.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use recdp_cnc::{CncGraph, StepOutcome};
use recdp_forkjoin::{join, scope, ThreadPoolBuilder};

#[test]
fn scopes_inside_joins_inside_scopes() {
    let pool = ThreadPoolBuilder::new().num_threads(4).build();
    let count = AtomicU64::new(0);
    pool.install(|| {
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    let (a, b) = join(
                        || {
                            scope(|inner| {
                                for _ in 0..4 {
                                    inner.spawn(|_| {
                                        count.fetch_add(1, Ordering::Relaxed);
                                    });
                                }
                            });
                            1u64
                        },
                        || 2u64,
                    );
                    count.fetch_add(a + b, Ordering::Relaxed);
                });
            }
        });
    });
    assert_eq!(count.load(Ordering::Relaxed), 8 * (4 + 3));
}

#[test]
fn many_short_lived_pools() {
    for i in 0..12 {
        let pool = ThreadPoolBuilder::new().num_threads(1 + i % 4).build();
        let (a, b) = pool.install(|| join(|| 20, || 22));
        assert_eq!(a + b, 42);
        drop(pool);
    }
}

#[test]
fn two_graphs_share_one_pool_concurrently() {
    let pool = Arc::new(ThreadPoolBuilder::new().num_threads(3).build());
    let g1 = CncGraph::with_pool(Arc::clone(&pool));
    let g2 = CncGraph::with_pool(Arc::clone(&pool));
    let out1 = g1.item_collection::<u32, u64>("o1");
    let out2 = g2.item_collection::<u32, u64>("o2");
    let t1 = g1.tag_collection::<u32>("t1");
    let t2 = g2.tag_collection::<u32>("t2");
    let (o1c, o2c) = (out1.clone(), out2.clone());
    // Graph 1 computes squares; graph 2 computes cubes, interleaved.
    t1.prescribe("sq", move |&n, _| {
        o1c.put(n, (n as u64) * (n as u64))?;
        Ok(StepOutcome::Done)
    });
    t2.prescribe("cube", move |&n, _| {
        o2c.put(n, (n as u64).pow(3))?;
        Ok(StepOutcome::Done)
    });
    for i in 0..200 {
        t1.put(i);
        t2.put(i);
    }
    g1.wait().unwrap();
    g2.wait().unwrap();
    assert_eq!(out1.len_ready(), 200);
    assert_eq!(out2.get_env(&7), Some(343));
}

#[test]
fn deep_tag_cascade() {
    // A 2000-deep sequential chain of steps, each produced by its
    // predecessor: exercises requeue-free deep recursion through the
    // injector.
    let g = CncGraph::with_threads(2);
    let out = g.item_collection::<u32, u64>("acc");
    let tags = g.tag_collection::<u32>("chain");
    let (o2, t2) = (out.clone(), tags.clone());
    tags.prescribe("link", move |&n, s| {
        let prev = if n == 0 { 0 } else { o2.get(s, &(n - 1))? };
        o2.put(n, prev + n as u64)?;
        if n < 2000 {
            t2.put(n + 1);
        }
        Ok(StepOutcome::Done)
    });
    tags.put(0);
    g.wait().unwrap();
    assert_eq!(out.get_env(&2000), Some(2000 * 2001 / 2));
}

#[test]
fn wide_fanout_single_producer() {
    // 1 producer, 3000 consumers parked on the same item.
    let g = CncGraph::with_threads(4);
    let gate = g.item_collection::<u32, u64>("gate");
    let out = g.item_collection::<u32, u64>("out");
    let tags = g.tag_collection::<u32>("consumers");
    let (gc, oc) = (gate.clone(), out.clone());
    tags.prescribe("consume", move |&n, s| {
        let v = gc.get(s, &0)?;
        oc.put(n, v + n as u64)?;
        Ok(StepOutcome::Done)
    });
    for n in 0..3000 {
        tags.put(n);
    }
    std::thread::sleep(std::time::Duration::from_millis(30));
    gate.put(0, 1_000_000).unwrap();
    let stats = g.wait().unwrap();
    assert_eq!(out.len_ready(), 3000);
    assert!(
        stats.steps_requeued >= 1000,
        "most consumers must have parked: {stats:?}"
    );
}

#[test]
fn env_puts_race_with_execution() {
    // The environment keeps feeding tags from two OS threads while the
    // graph executes; wait() is only called after both feeders join.
    let g = Arc::new(CncGraph::with_threads(3));
    let out = g.item_collection::<u32, u64>("out");
    let tags = g.tag_collection::<u32>("t");
    let oc = out.clone();
    tags.prescribe("id", move |&n, _| {
        oc.put(n, n as u64)?;
        Ok(StepOutcome::Done)
    });
    let t1 = tags.clone();
    let feeder1 = std::thread::spawn(move || {
        for i in 0..500 {
            t1.put(i);
        }
    });
    let t2 = tags.clone();
    let feeder2 = std::thread::spawn(move || {
        for i in 500..1000 {
            t2.put(i);
        }
    });
    feeder1.join().unwrap();
    feeder2.join().unwrap();
    g.wait().unwrap();
    assert_eq!(out.len_ready(), 1000);
}

#[test]
fn repeated_waits_on_one_graph() {
    // wait() is not one-shot: each round of env puts gets its own
    // quiescence, and an idle graph's wait returns immediately.
    let g = CncGraph::with_threads(2);
    let out = g.item_collection::<u32, u64>("out");
    let tags = g.tag_collection::<u32>("t");
    let oc = out.clone();
    tags.prescribe("id", move |&n, _| {
        oc.put(n, n as u64)?;
        Ok(StepOutcome::Done)
    });
    for round in 0u32..20 {
        tags.put(round);
        g.wait().unwrap();
        assert_eq!(out.get_env(&round), Some(round as u64));
        // An extra wait with nothing pending must also succeed.
        g.wait().unwrap();
    }
    assert_eq!(out.len_ready(), 20);
}

#[test]
fn concurrent_waits_from_many_threads() {
    // Several OS threads wait on the same graph while it executes; all
    // must observe quiescence (none may hang or panic).
    let g = Arc::new(CncGraph::with_threads(3));
    let out = g.item_collection::<u32, u64>("out");
    let tags = g.tag_collection::<u32>("t");
    let oc = out.clone();
    tags.prescribe("slowish", move |&n, _| {
        if n % 64 == 0 {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        oc.put(n, n as u64)?;
        Ok(StepOutcome::Done)
    });
    for i in 0..2000 {
        tags.put(i);
    }
    let waiters: Vec<_> = (0..4)
        .map(|_| {
            let g = Arc::clone(&g);
            std::thread::spawn(move || g.wait().map(|_| ()))
        })
        .collect();
    g.wait().unwrap();
    for w in waiters {
        w.join().unwrap().unwrap();
    }
    assert_eq!(out.len_ready(), 2000);
}

#[test]
fn env_put_racing_the_deadlock_check_recovers() {
    // One thread repeatedly calls wait() on a graph whose sole step is
    // parked on an item only the environment can produce; another thread
    // delivers that item after a delay. The deadlock verdict is
    // recomputed per wait() call, so the late put must turn a Deadlock
    // answer into success — this is the documented env-put/deadlock-check
    // race in the runtime.
    for trial in 0..20 {
        let g = Arc::new(CncGraph::with_threads(2));
        let gate = g.item_collection::<u32, u64>("gate");
        let out = g.item_collection::<u32, u64>("out");
        let tags = g.tag_collection::<u32>("t");
        let (gc, oc) = (gate.clone(), out.clone());
        tags.prescribe("parked", move |&n, s| {
            let v = gc.get(s, &0)?;
            oc.put(n, v)?;
            Ok(StepOutcome::Done)
        });
        tags.put(trial);
        let gate2 = gate.clone();
        let producer = std::thread::spawn(move || {
            // Land at varying points around the consumer's deadlock
            // verdicts.
            std::thread::sleep(std::time::Duration::from_micros(50 * (trial as u64 % 5)));
            gate2.put(0, 99).unwrap();
        });
        // Deadlock returns are recoverable: keep waiting until the env
        // put lands and the graph drains for real.
        loop {
            match g.wait() {
                Ok(_) => break,
                Err(recdp_cnc::CncError::Deadlock { .. }) => std::hint::spin_loop(),
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
        producer.join().unwrap();
        // The put may have landed after a final Deadlock verdict was
        // computed but the loop above retries, so by here the step ran.
        g.wait().unwrap();
        assert_eq!(out.get_env(&trial), Some(99));
    }
}

#[test]
fn concurrent_waiters_racing_an_env_put_all_drain() {
    // Regression stress for the deadlock-verdict race: a parked instance
    // resumed by an env put can run to full retirement *between* a
    // verdict's counter reads, making both counters look stalled; the
    // runtime's resume-epoch guard restarts the check instead of
    // returning a spurious Deadlock. Several waiters hammer the verdict
    // window while the put lands; every one of them must eventually
    // observe quiescence (a Deadlock verdict is only acceptable as the
    // documented put-arrived-entirely-after-the-verdict staleness, which
    // the retry loop absorbs — it must never persist).
    for trial in 0u32..50 {
        let g = Arc::new(CncGraph::with_threads(2));
        let gate = g.item_collection::<u32, u64>("gate");
        let out = g.item_collection::<u32, u64>("out");
        let tags = g.tag_collection::<u32>("t");
        let (gc, oc) = (gate.clone(), out.clone());
        tags.prescribe("parked", move |&n, s| {
            let v = gc.get(s, &0)?;
            oc.put(n, v)?;
            Ok(StepOutcome::Done)
        });
        tags.put(trial);
        let waiters: Vec<_> = (0..3)
            .map(|_| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || loop {
                    match g.wait() {
                        Ok(_) => break,
                        Err(recdp_cnc::CncError::Deadlock { .. }) => std::hint::spin_loop(),
                        Err(other) => panic!("unexpected error: {other:?}"),
                    }
                })
            })
            .collect();
        gate.put(0, 7).unwrap();
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(out.get_env(&trial), Some(7));
        g.wait().unwrap();
    }
}

#[test]
fn join_under_contention_returns_correct_values() {
    let pool = ThreadPoolBuilder::new().num_threads(4).build();
    // Many concurrent joins from scope tasks, each verifying its own pair.
    pool.install(|| {
        scope(|s| {
            for i in 0u64..64 {
                s.spawn(move |_| {
                    let (a, b) = join(move || i * 2, move || i * 3);
                    assert_eq!(a, i * 2);
                    assert_eq!(b, i * 3);
                });
            }
        });
    });
}
