//! Cross-validation of the `recdp-taskgraph` r-way join model against
//! the real fork-join engine.
//!
//! The model (`recdp_taskgraph::rway::{ge,fw,sw}_join_count`) predicts
//! the number of *forked stage barriers* — the `taskwait`s of the
//! paper's Listing 3 — from the stage recursions alone, written with no
//! reference to the engine's code. The engine reports the same quantity
//! two independent ways: `forkjoin_join_count` statically walks the
//! spec's `expand` tree, and `run_forkjoin_counting` increments an
//! atomic at every barrier the pool actually executes. All three must
//! agree *exactly*, at every decomposition width and fork grain; any
//! drift means the model and the implementation no longer describe the
//! same algorithm.
//!
//! `n = 64` with `base = 1` gives `t = 64` tiles per side — a power of
//! 2, 4 and 8 simultaneously — so every width recurses at full radix
//! with no clamped tail level (the aligned case the model predicts).

use recdp::prelude::*;
use recdp_taskgraph::rway;

const N: usize = 64;
const BASE: usize = 1; // t = 64 tiles

fn model_joins(benchmark: Benchmark, t: usize, r: usize, grain: usize) -> Option<u64> {
    match benchmark {
        Benchmark::Ge => Some(rway::ge_join_count(t, r, grain)),
        Benchmark::Fw => Some(rway::fw_join_count(t, r, grain)),
        // LCS shares SW's wavefront recursion, hence SW's join model.
        Benchmark::Sw | Benchmark::Lcs => Some(rway::sw_join_count(t, r, grain)),
        // Paren's triangle/square recursion has no closed model yet;
        // it is still covered by the measured == walked assertion.
        Benchmark::Paren => None,
    }
}

#[test]
fn measured_joins_match_static_walk_and_rway_model() {
    let pool = ThreadPoolBuilder::new().num_threads(3).build();
    let t = N / BASE;
    for benchmark in Benchmark::EXTENDED {
        for r in [2usize, 4, 8] {
            for grain in [1usize, 4] {
                let p = prepare_job_with(benchmark, N, BASE, Decomposition::new(r as u32));
                let measured = p.run_forkjoin_counting(&pool, grain);
                let walked = p.forkjoin_join_count(grain);
                assert_eq!(
                    measured,
                    walked,
                    "{} r={r} grain={grain}: engine vs static walk",
                    benchmark.name()
                );
                if let Some(model) = model_joins(benchmark, t, r, grain) {
                    assert_eq!(
                        measured,
                        model,
                        "{} r={r} grain={grain}: engine vs taskgraph model",
                        benchmark.name()
                    );
                }
            }
        }
    }
}

#[test]
fn join_counts_decrease_strictly_in_r_for_ge_and_fw() {
    // The tentpole's headline claim, on the real engine: widening the
    // decomposition strictly reduces the artificial-dependency count
    // for the pivot-round benchmarks. (SW/LCS tie at r = 2 vs 4 — see
    // the closed form in the taskgraph rway tests.)
    let pool = ThreadPoolBuilder::new().num_threads(3).build();
    for benchmark in [Benchmark::Ge, Benchmark::Fw] {
        let mut last = u64::MAX;
        for r in [2u32, 4, 8] {
            let p = prepare_job_with(benchmark, N, BASE, Decomposition::new(r));
            let joins = p.run_forkjoin_counting(&pool, 1);
            assert!(
                joins < last,
                "{} r={r}: {joins} must be below {last}",
                benchmark.name()
            );
            last = joins;
        }
    }
}

#[test]
fn counting_run_produces_the_oracle_table() {
    // The instrumented fork-join run is still the real computation:
    // its output must stay bitwise-identical to the serial loop oracle
    // at every width.
    let pool = ThreadPoolBuilder::new().num_threads(3).build();
    for benchmark in Benchmark::EXTENDED {
        let oracle = run_benchmark(benchmark, Execution::SerialLoops, N, 4, 1);
        for r in [2u32, 4, 8] {
            let p = prepare_job_with(benchmark, N, 4, Decomposition::new(r));
            let _ = p.run_forkjoin_counting(&pool, 2);
            assert!(
                p.table().bitwise_eq(&oracle.table),
                "{} r={r}",
                benchmark.name()
            );
        }
    }
}
