//! Schedule invariance of the paper's three DP kernels: on every
//! explored schedule of the managed CnC runtime, the final DP table is
//! bit-identical to the serial `loops` oracle and the replay-stable
//! counter projection is identical across schedules.
//!
//! Exploration is driven by `recdp-check` (no proptest — the corpus is
//! seeded, and any failure prints a `RECDP_CHECK_SEED` replay recipe).
//! The NonBlocking variant is deliberately excluded: its self-respawn
//! polling makes even `tags_put` schedule-dependent (that wasted work is
//! what Table I measures), so it has no invariant counter projection.

use recdp_check::{explore, replay_stable, Config, SharedScheduler};
use recdp_cnc::{CncGraph, RetryPolicy};
use recdp_faults::FaultPlan;
use recdp_kernels::workloads::{dna_sequence, fw_matrix, ge_matrix};
use recdp_kernels::{fw, ge, sw, CncVariant, Matrix};
use std::sync::Arc;

const N: usize = 16;
const BASE: usize = 4;
const SEED: u64 = 0xD1CE;

/// Exploration budget: at least 32 seeded schedules per corpus (more if
/// `RECDP_CHECK_SCHEDULES` asks for it), on top of the FIFO/LIFO pair.
fn corpus() -> Config {
    let cfg = Config::from_env();
    let n = cfg.schedules.max(32);
    cfg.with_schedules(n)
}

const VARIANTS: [CncVariant; 3] = [CncVariant::Native, CncVariant::Tuner, CncVariant::Manual];

fn managed(sched: &SharedScheduler) -> CncGraph {
    let (graph, _handle) = CncGraph::managed(sched.pick_fn());
    graph
}

#[test]
fn ge_table_and_stats_invariant_across_schedules() {
    let mut oracle = ge_matrix(N, SEED);
    ge::ge_loops(&mut oracle);
    let oracle_digest = oracle.bit_digest();
    for variant in VARIANTS {
        explore(&corpus(), |s| {
            let mut m = ge_matrix(N, SEED);
            let graph = managed(&s);
            let stats = ge::ge_cnc_on(&mut m, BASE, variant, &graph)
                .expect("GE must quiesce on every schedule");
            assert_eq!(
                m.bit_digest(),
                oracle_digest,
                "GE/{variant:?} table diverged from the serial-loops oracle"
            );
            (m.bit_digest(), replay_stable(&stats))
        });
    }
}

#[test]
fn sw_table_and_stats_invariant_across_schedules() {
    let a = dna_sequence(N, SEED);
    let b = dna_sequence(N, SEED ^ 0xFFFF);
    let mut oracle = Matrix::zeros(N);
    sw::sw_loops(&mut oracle, &a, &b);
    let oracle_digest = oracle.bit_digest();
    for variant in VARIANTS {
        explore(&corpus(), |s| {
            let mut m = Matrix::zeros(N);
            let graph = managed(&s);
            let stats = sw::sw_cnc_on(&mut m, &a, &b, BASE, variant, &graph)
                .expect("SW must quiesce on every schedule");
            assert_eq!(
                m.bit_digest(),
                oracle_digest,
                "SW/{variant:?} table diverged from the serial-loops oracle"
            );
            (m.bit_digest(), replay_stable(&stats))
        });
    }
}

#[test]
fn fw_table_and_stats_invariant_across_schedules() {
    let mut oracle = fw_matrix(N, SEED, 0.35);
    fw::fw_loops(&mut oracle);
    let oracle_digest = oracle.bit_digest();
    for variant in VARIANTS {
        explore(&corpus(), |s| {
            let mut m = fw_matrix(N, SEED, 0.35);
            let graph = managed(&s);
            let stats = fw::fw_cnc_on(&mut m, BASE, variant, &graph)
                .expect("FW must quiesce on every schedule");
            assert_eq!(
                m.bit_digest(),
                oracle_digest,
                "FW/{variant:?} table diverged from the serial-loops oracle"
            );
            (m.bit_digest(), replay_stable(&stats))
        });
    }
}

#[test]
fn ge_under_faults_stays_invariant_across_schedules() {
    // A fixed reseeded fault plan rides along with every schedule:
    // transient-fault decisions key on (step, tag, attempt), so
    // `faults_injected`/`steps_retried` join the invariant observation,
    // and the retried table still matches the oracle bit for bit.
    let mut oracle = ge_matrix(N, SEED);
    ge::ge_loops(&mut oracle);
    let oracle_digest = oracle.bit_digest();
    let template = FaultPlan::new(0).transient_step_failures(0.25);
    let stable = explore(&corpus(), |s| {
        let mut m = ge_matrix(N, SEED);
        let graph = managed(&s);
        graph.set_retry_policy(RetryPolicy::attempts(10));
        graph.set_fault_injector(Arc::new(template.reseeded(0xFA57)));
        let stats = ge::ge_cnc_on(&mut m, BASE, CncVariant::Native, &graph)
            .expect("retries must absorb the fault plan on every schedule");
        assert_eq!(
            m.bit_digest(),
            oracle_digest,
            "faulty GE diverged from oracle"
        );
        replay_stable(&stats)
    });
    assert!(
        stable.faults_injected > 0,
        "the fault plan injected nothing"
    );
}
