//! Schedule invariance of the DP kernels: on every explored schedule of
//! the managed CnC runtime, the final DP table is bit-identical to the
//! serial `loops` oracle and the replay-stable counter projection is
//! identical across schedules.
//!
//! The harness is generic over [`DpSpec`], so each benchmark is one
//! call site handing the engine its spec — GE, SW, FW and the
//! parenthesization extension all run through the same check.
//!
//! Exploration is driven by `recdp-check` (no proptest — the corpus is
//! seeded, and any failure prints a `RECDP_CHECK_SEED` replay recipe).
//! The NonBlocking variant is deliberately excluded: its self-respawn
//! polling makes even `tags_put` schedule-dependent (that wasted work is
//! what Table I measures), so it has no invariant counter projection.

use recdp_check::{explore, replay_stable, Config, ReplayStats, SharedScheduler};
use recdp_cnc::{CncGraph, RetryPolicy};
use recdp_faults::FaultPlan;
use recdp_kernels::engine::run_cnc_on;
use recdp_kernels::workloads::{chain_dims, dna_sequence, fw_matrix, ge_matrix};
use recdp_kernels::{fw, ge, lcs, paren, sw, CncVariant, Decomposition, DpSpec, Matrix};
use std::sync::Arc;

const N: usize = 16;
const BASE: usize = 4;
const SEED: u64 = 0xD1CE;

/// Exploration budget: at least 32 seeded schedules per corpus (more if
/// `RECDP_CHECK_SCHEDULES` asks for it), on top of the FIFO/LIFO pair.
fn corpus() -> Config {
    let cfg = Config::from_env();
    let n = cfg.schedules.max(32);
    cfg.with_schedules(n)
}

const VARIANTS: [CncVariant; 3] = [CncVariant::Native, CncVariant::Tuner, CncVariant::Manual];

fn managed(sched: &SharedScheduler) -> CncGraph {
    let (graph, _handle) = CncGraph::managed(sched.pick_fn());
    graph
}

/// The generic invariance check. `fresh` builds the input table, `spec`
/// wraps it in the benchmark's [`DpSpec`], `loops` is the serial oracle.
/// Every blocking variant must reproduce the oracle bit for bit on every
/// explored schedule, with a schedule-independent counter projection.
fn invariant_across_schedules<S: DpSpec>(
    name: &str,
    fresh: &dyn Fn() -> Matrix,
    spec: &dyn Fn(&mut Matrix) -> S,
    loops: &dyn Fn(&mut Matrix),
) {
    let mut oracle = fresh();
    loops(&mut oracle);
    let oracle_digest = oracle.bit_digest();
    for variant in VARIANTS {
        explore(&corpus(), |s| {
            let mut m = fresh();
            let sp = spec(&mut m);
            let graph = managed(&s);
            let stats = run_cnc_on(&sp, variant, &graph).unwrap_or_else(|e| {
                panic!("{name}/{variant:?} must quiesce on every schedule: {e:?}")
            });
            assert_eq!(
                m.bit_digest(),
                oracle_digest,
                "{name}/{variant:?} table diverged from the serial-loops oracle"
            );
            (m.bit_digest(), replay_stable(&stats))
        });
    }
}

/// The generic fault-absorption check: a fixed reseeded fault plan rides
/// along with every schedule. Transient-fault decisions key on
/// `(step, tag, attempt)`, so `faults_injected`/`steps_retried` join the
/// invariant observation, and the retried table still matches the oracle
/// bit for bit.
fn faults_absorbed_across_schedules<S: DpSpec>(
    name: &str,
    fault_seed: u64,
    fresh: &dyn Fn() -> Matrix,
    spec: &dyn Fn(&mut Matrix) -> S,
    loops: &dyn Fn(&mut Matrix),
) -> ReplayStats {
    let mut oracle = fresh();
    loops(&mut oracle);
    let oracle_digest = oracle.bit_digest();
    let template = FaultPlan::new(0).transient_step_failures(0.25);
    explore(&corpus(), |s| {
        let mut m = fresh();
        let sp = spec(&mut m);
        let graph = managed(&s);
        graph.set_retry_policy(RetryPolicy::attempts(10));
        graph.set_fault_injector(Arc::new(template.reseeded(fault_seed)));
        let stats = run_cnc_on(&sp, CncVariant::Native, &graph).unwrap_or_else(|e| {
            panic!("{name}: retries must absorb the fault plan on every schedule: {e:?}")
        });
        assert_eq!(
            m.bit_digest(),
            oracle_digest,
            "faulty {name} diverged from oracle"
        );
        replay_stable(&stats)
    })
}

#[test]
fn ge_table_and_stats_invariant_across_schedules() {
    invariant_across_schedules(
        "GE",
        &|| ge_matrix(N, SEED),
        &|m| ge::GeSpec::new(m.ptr(), BASE),
        &|m| ge::ge_loops(m),
    );
}

#[test]
fn sw_table_and_stats_invariant_across_schedules() {
    let a = dna_sequence(N, SEED);
    let b = dna_sequence(N, SEED ^ 0xFFFF);
    invariant_across_schedules(
        "SW",
        &|| Matrix::zeros(N),
        &|m| sw::SwSpec::new(m.ptr(), &a, &b, BASE),
        &|m| sw::sw_loops(m, &a, &b),
    );
}

#[test]
fn fw_table_and_stats_invariant_across_schedules() {
    invariant_across_schedules(
        "FW",
        &|| fw_matrix(N, SEED, 0.35),
        &|m| fw::FwSpec::new(m.ptr(), BASE),
        &|m| fw::fw_loops(m),
    );
}

#[test]
fn paren_table_and_stats_invariant_across_schedules() {
    let dims = chain_dims(N, SEED);
    invariant_across_schedules(
        "PAREN",
        &|| Matrix::zeros(N),
        &|m| paren::ParenSpec::new(m.ptr(), &dims, BASE),
        &|m| paren::paren_loops(m, &dims),
    );
}

#[test]
fn lcs_table_and_stats_invariant_across_schedules() {
    let a = dna_sequence(N, SEED ^ 0x7C5);
    let b = dna_sequence(N, SEED ^ 0x3A7);
    invariant_across_schedules(
        "LCS",
        &|| Matrix::zeros(N),
        &|m| lcs::LcsSpec::new(m.ptr(), &a, &b, BASE),
        &|m| lcs::lcs_loops(m, &a, &b),
    );
}

#[test]
fn four_way_decomposition_invariant_across_schedules() {
    // The r-way expansion only regroups the tag puts (the CnC engine
    // flattens the stages eagerly), so at r = 4 — the widest aligned
    // radix of the t = 4 tile grid — every benchmark must preserve both
    // the oracle digest and the replay-stable counters on all >= 32
    // explored schedules.
    let d = Decomposition::new(4);
    invariant_across_schedules(
        "GE/r4",
        &|| ge_matrix(N, SEED),
        &|m| ge::GeSpec::new(m.ptr(), BASE).with_decomposition(d),
        &|m| ge::ge_loops(m),
    );
    invariant_across_schedules(
        "FW/r4",
        &|| fw_matrix(N, SEED, 0.35),
        &|m| fw::FwSpec::new(m.ptr(), BASE).with_decomposition(d),
        &|m| fw::fw_loops(m),
    );
    let a = dna_sequence(N, SEED);
    let b = dna_sequence(N, SEED ^ 0xFFFF);
    invariant_across_schedules(
        "SW/r4",
        &|| Matrix::zeros(N),
        &|m| sw::SwSpec::new(m.ptr(), &a, &b, BASE).with_decomposition(d),
        &|m| sw::sw_loops(m, &a, &b),
    );
    invariant_across_schedules(
        "LCS/r4",
        &|| Matrix::zeros(N),
        &|m| lcs::LcsSpec::new(m.ptr(), &a, &b, BASE).with_decomposition(d),
        &|m| lcs::lcs_loops(m, &a, &b),
    );
    let dims = chain_dims(N, SEED);
    invariant_across_schedules(
        "PAREN/r4",
        &|| Matrix::zeros(N),
        &|m| paren::ParenSpec::new(m.ptr(), &dims, BASE).with_decomposition(d),
        &|m| paren::paren_loops(m, &dims),
    );
}

#[test]
fn ge_under_faults_stays_invariant_across_schedules() {
    let stable = faults_absorbed_across_schedules(
        "GE",
        0xFA57,
        &|| ge_matrix(N, SEED),
        &|m| ge::GeSpec::new(m.ptr(), BASE),
        &|m| ge::ge_loops(m),
    );
    assert!(
        stable.faults_injected > 0,
        "the fault plan injected nothing"
    );
}

#[test]
fn paren_under_faults_stays_invariant_across_schedules() {
    let dims = chain_dims(N, SEED);
    let stable = faults_absorbed_across_schedules(
        "PAREN",
        0x9A27,
        &|| Matrix::zeros(N),
        &|m| paren::ParenSpec::new(m.ptr(), &dims, BASE),
        &|m| paren::paren_loops(m, &dims),
    );
    assert!(
        stable.faults_injected > 0,
        "the fault plan injected nothing"
    );
}
