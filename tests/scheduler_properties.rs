//! Property tests on the discrete-event scheduler: Brent's bound, work
//! conservation and monotonicity over random DAGs.

use proptest::prelude::*;
use recdp_sim::{simulate, QueuePolicy, SimConfig};
use recdp_taskgraph::{metrics, GraphBuilder, TaskKind};

/// A random layered DAG: `layers` layers of up to `width` tasks, edges
/// only forward (guaranteed acyclic), random weights.
fn random_dag(
    layers: usize,
    width: usize,
    edge_density: f64,
    seed: u64,
) -> recdp_taskgraph::TaskGraph {
    // Deterministic xorshift so proptest shrinking stays meaningful.
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut b = GraphBuilder::new();
    let mut layer_nodes: Vec<Vec<u32>> = Vec::new();
    for l in 0..layers {
        let count = 1 + (next() as usize) % width;
        let nodes: Vec<u32> = (0..count)
            .map(|_| b.add_node(TaskKind::Tile, 1.0 + (next() % 100) as f64))
            .collect();
        if l > 0 {
            for &n in &nodes {
                for &p in &layer_nodes[l - 1] {
                    if (next() % 1000) as f64 / 1000.0 < edge_density {
                        b.add_edge(p, n);
                    }
                }
            }
        }
        layer_nodes.push(nodes);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Greedy scheduling with zero software overhead satisfies Brent:
    /// `max(T1/P, Tinf) <= makespan <= T1/P + Tinf`.
    #[test]
    fn brent_bound(
        layers in 1usize..8,
        width in 1usize..10,
        density in 0.0f64..1.0,
        seed in any::<u64>(),
        procs in 1usize..17,
    ) {
        let g = random_dag(layers, width, density, seed);
        let m = metrics::analyze(&g);
        let cfg = SimConfig { processors: procs, ns_per_flop: 1.0, per_task_ns: 0.0, join_ns: 0.0, policy: QueuePolicy::Fifo };
        let r = simulate(&g, &cfg);
        let lower = (m.work / procs as f64).max(m.span);
        let upper = m.work / procs as f64 + m.span;
        prop_assert!(r.makespan_ns >= lower - 1e-6, "{} < {lower}", r.makespan_ns);
        prop_assert!(r.makespan_ns <= upper + 1e-6, "{} > {upper}", r.makespan_ns);
    }

    /// Busy time equals total work regardless of the schedule.
    #[test]
    fn work_conservation(
        layers in 1usize..7,
        width in 1usize..8,
        density in 0.0f64..1.0,
        seed in any::<u64>(),
        procs in 1usize..9,
    ) {
        let g = random_dag(layers, width, density, seed);
        let m = metrics::analyze(&g);
        let cfg = SimConfig { processors: procs, ns_per_flop: 1.0, per_task_ns: 0.0, join_ns: 0.0, policy: QueuePolicy::Fifo };
        let r = simulate(&g, &cfg);
        prop_assert!((r.busy_ns - m.work).abs() < 1e-6);
        prop_assert_eq!(r.compute_tasks, g.num_compute_nodes());
        prop_assert!(r.utilization <= 1.0 + 1e-9);
    }

    /// More processors never hurt (greedy list scheduling on the same
    /// arrival order is monotone here because ready tasks are dispatched
    /// FIFO and durations are fixed).
    #[test]
    fn single_processor_equals_work(
        layers in 1usize..7,
        width in 1usize..8,
        density in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let g = random_dag(layers, width, density, seed);
        let m = metrics::analyze(&g);
        let cfg = SimConfig { processors: 1, ns_per_flop: 1.0, per_task_ns: 0.0, join_ns: 0.0, policy: QueuePolicy::Fifo };
        let r = simulate(&g, &cfg);
        prop_assert!((r.makespan_ns - m.work).abs() < 1e-6);
    }

    /// Span is a lower bound at any processor count, even with
    /// unbounded parallelism.
    #[test]
    fn span_is_floor(
        layers in 1usize..7,
        width in 1usize..8,
        density in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let g = random_dag(layers, width, density, seed);
        let m = metrics::analyze(&g);
        let cfg =
            SimConfig { processors: 4096, ns_per_flop: 1.0, per_task_ns: 0.0, join_ns: 0.0, policy: QueuePolicy::Fifo };
        let r = simulate(&g, &cfg);
        prop_assert!((r.makespan_ns - m.span).abs() < 1e-6,
            "with unbounded P the makespan is exactly the span");
    }
}
