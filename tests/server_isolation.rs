//! Pool-reuse isolation: jobs served back-to-back on one shared pool
//! must behave exactly like jobs run on fresh private pools. Runtime
//! state is graph-scoped (stats, retry budgets, deadlines), so nothing
//! a job does may leak into the next one — and the pool contributes
//! only threads plus its own supervision counters, which must stay
//! quiet under healthy load.

use recdp::{run_benchmark, Benchmark, Execution};
use recdp_kernels::CncVariant;
use recdp_server::{DpServer, JobSpec, ServerConfig};

const N: usize = 32;
const BASE: usize = 8;
const THREADS: usize = 2;

fn server() -> DpServer {
    DpServer::new(ServerConfig {
        threads: THREADS,
        queue_depth: 64,
        max_inflight: 1,
        paused: false,
        trace_utilization: true,
    })
}

/// Five jobs back-to-back on one shared pool: per-job digests and
/// GraphStats are identical to fresh-pool runs of the same spec, and
/// the pool's supervision counters never move. The Tuner variant
/// pre-schedules each step on its dependencies, so its GraphStats are
/// schedule-independent and the comparison can be *exact* — any
/// carried-over runtime state (a leftover retry budget, a stale
/// checkpoint skip-set, a reused stats block) would show up as a
/// counter mismatch.
#[test]
fn shared_pool_jobs_match_fresh_pool_runs_exactly() {
    let server = server();
    let round = [
        (Benchmark::Ge, CncVariant::Tuner),
        (Benchmark::Sw, CncVariant::Tuner),
        (Benchmark::Fw, CncVariant::Tuner),
        (Benchmark::Paren, CncVariant::Tuner),
        // Re-run the first spec last: if job 1 left state behind, the
        // repeat is where it would surface.
        (Benchmark::Ge, CncVariant::Tuner),
    ];
    for (i, (benchmark, variant)) in round.into_iter().enumerate() {
        let fresh = run_benchmark(benchmark, Execution::Cnc(variant), N, BASE, THREADS);
        let handle = server
            .submit(JobSpec::benchmark(
                "iso",
                benchmark,
                Execution::Cnc(variant),
                N,
                BASE,
            ))
            .expect("queue has room");
        let served = handle.wait().expect("healthy job");
        assert_eq!(
            served.digests,
            vec![fresh.table.bit_digest()],
            "job {i} ({}): digest diverged from fresh-pool run",
            benchmark.name()
        );
        assert_eq!(
            served.cnc_stats.expect("cnc job carries stats"),
            fresh.cnc_stats.expect("cnc run carries stats"),
            "job {i} ({}): GraphStats diverged from fresh-pool run — \
             state leaked across jobs on the shared pool",
            benchmark.name()
        );
        assert_eq!(
            server.worker_deaths(),
            0,
            "job {i}: healthy jobs must not consume pool supervision state"
        );
        assert_eq!(server.alive_workers(), THREADS, "job {i}");
    }
    let stats = server.stats();
    assert_eq!(stats.completed, 5);
    assert_eq!(stats.failed, 0);
    server.shutdown();
}

/// The schedule-dependent variants can't promise identical counters,
/// but their *results* must still be bit-identical to fresh-pool runs,
/// and the invariant counters (work actually performed) must match.
#[test]
fn shared_pool_preserves_digests_for_every_variant() {
    let server = server();
    let oracle = run_benchmark(Benchmark::Fw, Execution::SerialLoops, N, BASE, 1);
    for variant in CncVariant::ALL4 {
        let handle = server
            .submit(JobSpec::benchmark(
                "iso",
                Benchmark::Fw,
                Execution::Cnc(variant),
                N,
                BASE,
            ))
            .expect("queue has room");
        let served = handle.wait().expect("healthy job");
        assert_eq!(
            served.digests,
            vec![oracle.table.bit_digest()],
            "{}",
            variant.label()
        );
        let stats = served.cnc_stats.unwrap();
        let fresh = run_benchmark(Benchmark::Fw, Execution::Cnc(variant), N, BASE, THREADS)
            .cnc_stats
            .unwrap();
        // The single-assignment item counter is schedule-independent
        // for every variant; steps and tags are too except under
        // NonBlocking, which re-runs steps (and re-puts their tags)
        // whenever a non-blocking get fails, so those counts vary with
        // timing.
        assert_eq!(stats.items_put, fresh.items_put, "{}", variant.label());
        if variant != CncVariant::NonBlocking {
            assert_eq!(
                stats.steps_completed,
                fresh.steps_completed,
                "{}",
                variant.label()
            );
            assert_eq!(stats.tags_put, fresh.tags_put, "{}", variant.label());
        }
    }
    server.shutdown();
}

/// Fork-join jobs interleaved with data-flow jobs on the same pool:
/// every result matches its serial oracle (the pool's deques carry
/// both engines' tasks without cross-talk).
#[test]
fn mixed_engines_share_the_pool_without_crosstalk() {
    let server = server();
    for benchmark in Benchmark::EXTENDED {
        let oracle = run_benchmark(benchmark, Execution::SerialLoops, N, BASE, 1);
        for execution in [
            Execution::ForkJoin,
            Execution::Cnc(CncVariant::Native),
            Execution::ForkJoin,
        ] {
            let handle = server
                .submit(JobSpec::benchmark("mix", benchmark, execution, N, BASE))
                .expect("queue has room");
            let served = handle.wait().expect("healthy job");
            assert_eq!(
                served.digests,
                vec![oracle.table.bit_digest()],
                "{} under {}",
                benchmark.name(),
                execution.label()
            );
        }
    }
    assert_eq!(server.worker_deaths(), 0);
    server.shutdown();
}
