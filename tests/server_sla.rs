//! SLA conformance of the job server: per-job deadlines surface as
//! [`CncError::Timeout`], cancellation works both mid-queue and
//! mid-run and returns promptly, and none of it poisons the shared
//! pool — the next tenant's job on the same server still produces the
//! bit-exact table.

use std::sync::Arc;
use std::time::{Duration, Instant};

use recdp::{run_benchmark, Benchmark, Execution};
use recdp_cnc::CncError;
use recdp_faults::FaultPlan;
use recdp_kernels::CncVariant;
use recdp_server::{DpServer, JobError, JobSpec, JobStatus, ServerConfig};

const N: usize = 32;
const BASE: usize = 8;

fn server() -> DpServer {
    DpServer::new(ServerConfig {
        threads: 2,
        queue_depth: 64,
        max_inflight: 1,
        paused: false,
        trace_utilization: false,
    })
}

fn cnc_job(tenant: &str) -> JobSpec {
    JobSpec::benchmark(
        tenant,
        Benchmark::Ge,
        Execution::Cnc(CncVariant::Native),
        N,
        BASE,
    )
}

/// A job that cannot finish quickly: every step sleeps `delay`.
fn dragging_job(tenant: &str, delay: Duration) -> JobSpec {
    cnc_job(tenant).with_injector(Arc::new(FaultPlan::new(0x51A0).slow_steps(1.0, delay)))
}

/// Asserts the shared pool still serves correct results after `server`
/// absorbed an SLA violation.
fn assert_pool_unpoisoned(server: &DpServer) {
    let oracle = run_benchmark(Benchmark::Ge, Execution::SerialLoops, N, BASE, 1);
    let handle = server
        .submit(cnc_job("after"))
        .expect("queue has room after SLA failure");
    let served = handle.wait().expect("follow-up job must run clean");
    assert_eq!(served.digests, vec![oracle.table.bit_digest()]);
    assert_eq!(
        server.worker_deaths(),
        0,
        "SLA failures are job-level, not pool-level"
    );
}

/// A running job that blows its deadline fails with the runtime's own
/// `Timeout` error (deadline measured from submission), within a
/// bounded wait.
#[test]
fn deadline_expiry_surfaces_as_timeout() {
    let server = server();
    // ~30 steps x 5ms of injected delay across 2 workers >> 40ms SLA.
    let handle = server
        .submit(
            dragging_job("sla", Duration::from_millis(5)).with_deadline(Duration::from_millis(40)),
        )
        .expect("queue has room");
    let begin = Instant::now();
    let err = handle.wait().unwrap_err();
    assert!(
        matches!(err, JobError::Cnc(CncError::Timeout { .. })),
        "expected Timeout, got {err}"
    );
    assert!(
        begin.elapsed() < Duration::from_secs(10),
        "a 40ms deadline must not take {:?} to report",
        begin.elapsed()
    );
    assert_pool_unpoisoned(&server);
    let sla = server.tenant_stats("sla").unwrap();
    assert_eq!(sla.failed, 1);
    assert_eq!(sla.completed, 0);
    server.shutdown();
}

/// A deadline that expires while the job is still queued fails at
/// dispatch without the job ever running.
#[test]
fn deadline_can_expire_in_queue() {
    let server = server();
    server.pause();
    let handle = server
        .submit(cnc_job("sla").with_deadline(Duration::from_millis(1)))
        .expect("queue has room");
    std::thread::sleep(Duration::from_millis(15));
    server.resume();
    let err = handle.wait().unwrap_err();
    match err {
        JobError::Cnc(CncError::Timeout {
            pending, blocked, ..
        }) => {
            assert_eq!((pending, blocked), (0, 0), "the job never started");
        }
        other => panic!("expected queue-expired Timeout, got {other}"),
    }
    assert_pool_unpoisoned(&server);
    server.shutdown();
}

/// Cancelling a job that is still in the queue resolves it
/// immediately — before the server is even resumed — and the
/// scheduler skips its corpse without disturbing its neighbours.
#[test]
fn mid_queue_cancel_resolves_immediately() {
    let server = server();
    server.pause();
    let doomed = server.submit(cnc_job("cx")).expect("queue has room");
    let survivor = server.submit(cnc_job("cx")).expect("queue has room");
    doomed.cancel("user abort");
    assert_eq!(
        doomed.status(),
        JobStatus::Done,
        "queued cancellation must not wait for a runner"
    );
    assert_eq!(
        doomed.wait().unwrap_err(),
        JobError::Cancelled("user abort".into())
    );
    server.resume();
    survivor.wait().expect("the neighbouring job is untouched");
    let cx = server.tenant_stats("cx").unwrap();
    assert_eq!(cx.cancelled, 1);
    assert_eq!(cx.completed, 1);
    assert_pool_unpoisoned(&server);
    server.shutdown();
}

/// Cancelling a job mid-run fires its graph's `CancelToken`: the wait
/// returns promptly with `Cancelled`, and the shared pool keeps
/// serving subsequent jobs.
#[test]
fn mid_run_cancel_returns_promptly_without_poisoning_the_pool() {
    let server = server();
    // Each step drags 20ms, so the job runs for hundreds of
    // milliseconds — comfortably long enough to observe `Running` and
    // cancel it in flight.
    let handle = server
        .submit(dragging_job("cx", Duration::from_millis(20)))
        .expect("queue has room");
    let spin = Instant::now();
    while handle.status() != JobStatus::Running {
        assert!(
            spin.elapsed() < Duration::from_secs(10),
            "job never started running"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    handle.cancel("operator request");
    let begin = Instant::now();
    let err = handle.wait().unwrap_err();
    assert!(
        matches!(&err, JobError::Cancelled(reason) if reason.contains("operator request")),
        "expected mid-run Cancelled, got {err}"
    );
    assert!(
        begin.elapsed() < Duration::from_secs(10),
        "mid-run cancellation must drain promptly, took {:?}",
        begin.elapsed()
    );
    // The pool outlives the cancelled graph: every benchmark still
    // runs bit-exact on the same server.
    for benchmark in Benchmark::EXTENDED {
        let oracle = run_benchmark(benchmark, Execution::SerialLoops, N, BASE, 1);
        let served = server
            .submit(JobSpec::benchmark(
                "after",
                benchmark,
                Execution::Cnc(CncVariant::Native),
                N,
                BASE,
            ))
            .expect("queue has room")
            .wait()
            .expect("follow-up job must run clean");
        assert_eq!(
            served.digests,
            vec![oracle.table.bit_digest()],
            "{}",
            benchmark.name()
        );
    }
    assert_eq!(server.worker_deaths(), 0);
    let cx = server.tenant_stats("cx").unwrap();
    assert_eq!(cx.cancelled, 1);
    server.shutdown();
}
