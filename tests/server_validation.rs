//! Submission-time validation of the job server: geometry the kernels
//! would reject is refused at the door as a structured
//! [`SubmitError::InvalidSpec`] — it used to reach a runner and
//! surface as an opaque `JobError::Panicked` from a kernel `assert!`
//! deep inside the run. The pool must be untouched by refusals, and
//! autotuned jobs ([`JobSpec::benchmark_tuned`]) must digest-match
//! explicit-base runs.

use recdp::{auto_base, run_benchmark, Benchmark, Execution};
use recdp_kernels::CncVariant;
use recdp_server::{
    BatchMode, DpServer, JobSpec, ServerConfig, SpecViolation, SubmitError, SwQuery,
};

const THREADS: usize = 2;

fn server() -> DpServer {
    DpServer::new(ServerConfig {
        threads: THREADS,
        queue_depth: 64,
        max_inflight: 1,
        paused: false,
        trace_utilization: false,
    })
}

fn expect_invalid(result: Result<recdp_server::JobHandle, SubmitError>) -> SpecViolation {
    match result {
        Err(SubmitError::InvalidSpec(v)) => v,
        Ok(_) => panic!("bad spec was admitted"),
        Err(other) => panic!("wrong refusal: {other}"),
    }
}

#[test]
fn bad_geometry_is_refused_at_submit_and_pool_survives() {
    let server = server();
    let cnc = Execution::Cnc(CncVariant::Native);

    // Non-power-of-two table side (the original panic path: 48 passes
    // no submission check and trips `check_rdp_sizes` on a runner).
    let v = expect_invalid(server.submit(JobSpec::benchmark("t", Benchmark::Ge, cnc, 48, 8)));
    assert_eq!(v, SpecViolation::NonPowerOfTwoSize { n: 48 });

    // Non-power-of-two base.
    let v = expect_invalid(server.submit(JobSpec::benchmark("t", Benchmark::Fw, cnc, 32, 12)));
    assert_eq!(v, SpecViolation::NonPowerOfTwoBase { base: 12 });

    // Base exceeding the table side.
    let v = expect_invalid(server.submit(JobSpec::benchmark("t", Benchmark::Sw, cnc, 32, 64)));
    assert_eq!(v, SpecViolation::BaseExceedsSize { n: 32, base: 64 });

    // Batch query whose sequences cannot cover its table.
    let v = expect_invalid(server.submit(JobSpec::sw_batch(
        "t",
        vec![SwQuery {
            a: vec![b'A'; 16],
            b: vec![b'C'; 32],
            n: 32,
            base: 8,
        }],
        BatchMode::Coalesced,
        CncVariant::Native,
    )));
    assert_eq!(v, SpecViolation::SequenceTooShort { len: 16, n: 32 });

    // Nothing was queued, every refusal was accounted, and the pool is
    // fully alive: the next (valid) job runs and is bit-exact.
    assert_eq!(server.queue_len(), 0);
    assert_eq!(server.tenant_stats("t").unwrap().rejected, 4);
    assert_eq!(server.alive_workers(), THREADS);
    let oracle = run_benchmark(Benchmark::Ge, Execution::SerialLoops, 32, 8, 1);
    let result = server
        .submit(JobSpec::benchmark("t", Benchmark::Ge, cnc, 32, 8))
        .expect("valid job must be admitted after refusals")
        .wait()
        .expect("valid job must run");
    assert_eq!(result.digests, vec![oracle.table.bit_digest()]);
    assert_eq!(server.tenant_stats("t").unwrap().completed, 1);
    server.shutdown();
}

#[test]
fn zero_n_is_invalid_but_auto_base_is_not() {
    let server = server();
    // n = 0 is caught as a size violation (0 is not a power of two)...
    let v = expect_invalid(server.submit(JobSpec::benchmark(
        "t",
        Benchmark::Ge,
        Execution::SerialRdp,
        0,
        8,
    )));
    assert_eq!(v, SpecViolation::NonPowerOfTwoSize { n: 0 });
    // ...while base = 0 is AUTO_BASE, which is always admissible.
    let handle = server
        .submit(JobSpec::benchmark_tuned(
            "t",
            Benchmark::Ge,
            Execution::SerialRdp,
            32,
        ))
        .expect("AUTO_BASE is a valid base");
    assert!(handle.wait().is_ok());
    server.shutdown();
}

#[test]
fn tuned_jobs_digest_match_explicit_base_runs() {
    let server = server();
    let n = 32;
    for benchmark in Benchmark::ALL4 {
        let oracle = run_benchmark(benchmark, Execution::SerialLoops, n, 8, 1);
        let tuned = server
            .submit(JobSpec::benchmark_tuned(
                "t",
                benchmark,
                Execution::Cnc(CncVariant::Tuner),
                n,
            ))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(
            tuned.digests,
            vec![oracle.table.bit_digest()],
            "{}: tuned (base {}) vs explicit",
            benchmark.name(),
            auto_base(benchmark, n)
        );
    }
    server.shutdown();
}
