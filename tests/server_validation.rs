//! Submission-time validation of the job server: geometry the kernels
//! would reject is refused at the door as a structured
//! [`SubmitError::InvalidSpec`] — it used to reach a runner and
//! surface as an opaque `JobError::Panicked` from a kernel `assert!`
//! deep inside the run. The pool must be untouched by refusals, and
//! autotuned jobs ([`JobSpec::benchmark_tuned`]) must digest-match
//! explicit-base runs.

use recdp::{auto_base, run_benchmark, Benchmark, Execution};
use recdp_kernels::CncVariant;
use recdp_server::{
    BatchMode, DpServer, JobSpec, ServerConfig, SpecViolation, SubmitError, SwQuery,
};

const THREADS: usize = 2;

fn server() -> DpServer {
    DpServer::new(ServerConfig {
        threads: THREADS,
        queue_depth: 64,
        max_inflight: 1,
        paused: false,
        trace_utilization: false,
    })
}

fn expect_invalid(result: Result<recdp_server::JobHandle, SubmitError>) -> SpecViolation {
    match result {
        Err(SubmitError::InvalidSpec(v)) => v,
        Ok(_) => panic!("bad spec was admitted"),
        Err(other) => panic!("wrong refusal: {other}"),
    }
}

#[test]
fn bad_geometry_is_refused_at_submit_and_pool_survives() {
    let server = server();
    let cnc = Execution::Cnc(CncVariant::Native);

    // Non-power-of-two table side (the original panic path: 48 passes
    // no submission check and trips `check_rdp_sizes` on a runner).
    let v = expect_invalid(server.submit(JobSpec::benchmark("t", Benchmark::Ge, cnc, 48, 8)));
    assert_eq!(v, SpecViolation::NonPowerOfTwoSize { n: 48 });

    // Non-power-of-two base.
    let v = expect_invalid(server.submit(JobSpec::benchmark("t", Benchmark::Fw, cnc, 32, 12)));
    assert_eq!(v, SpecViolation::NonPowerOfTwoBase { base: 12 });

    // Base exceeding the table side.
    let v = expect_invalid(server.submit(JobSpec::benchmark("t", Benchmark::Sw, cnc, 32, 64)));
    assert_eq!(v, SpecViolation::BaseExceedsSize { n: 32, base: 64 });

    // Batch query whose sequences cannot cover its table.
    let v = expect_invalid(server.submit(JobSpec::sw_batch(
        "t",
        vec![SwQuery {
            a: vec![b'A'; 16],
            b: vec![b'C'; 32],
            n: 32,
            base: 8,
        }],
        BatchMode::Coalesced,
        CncVariant::Native,
    )));
    assert_eq!(v, SpecViolation::SequenceTooShort { len: 16, n: 32 });

    // Nothing was queued, every refusal was accounted, and the pool is
    // fully alive: the next (valid) job runs and is bit-exact.
    assert_eq!(server.queue_len(), 0);
    assert_eq!(server.tenant_stats("t").unwrap().rejected, 4);
    assert_eq!(server.alive_workers(), THREADS);
    let oracle = run_benchmark(Benchmark::Ge, Execution::SerialLoops, 32, 8, 1);
    let result = server
        .submit(JobSpec::benchmark("t", Benchmark::Ge, cnc, 32, 8))
        .expect("valid job must be admitted after refusals")
        .wait()
        .expect("valid job must run");
    assert_eq!(result.digests, vec![oracle.table.bit_digest()]);
    assert_eq!(server.tenant_stats("t").unwrap().completed, 1);
    server.shutdown();
}

#[test]
fn bad_decomposition_widths_are_refused_at_submit_and_pool_survives() {
    let server = server();
    let fj = Execution::ForkJoin;

    // r = 3: not a power of two — the kernels' `Decomposition::new`
    // would panic on a runner thread; the server refuses at the door.
    let v =
        expect_invalid(server.submit(JobSpec::benchmark_rway("t", Benchmark::Ge, fj, 32, 8, 3)));
    assert_eq!(v, SpecViolation::NonPowerOfTwoDecomposition { r: 3 });

    // r = 1 degenerates to no split at all (infinite recursion).
    let v =
        expect_invalid(server.submit(JobSpec::benchmark_rway("t", Benchmark::Sw, fj, 32, 8, 1)));
    assert_eq!(v, SpecViolation::NonPowerOfTwoDecomposition { r: 1 });

    // r = 64 on a 4-tile grid: the root split cannot be 64-wide.
    let v =
        expect_invalid(server.submit(JobSpec::benchmark_rway("t", Benchmark::Fw, fj, 32, 8, 64)));
    assert_eq!(
        v,
        SpecViolation::DecompositionExceedsTiles { r: 64, tiles: 4 }
    );

    // r = 4 on an 8-tile grid: 8 is not a power of 4, so one recursion
    // level would clamp and the taskgraph model no longer applies; the
    // server only admits the aligned case.
    let v =
        expect_invalid(server.submit(JobSpec::benchmark_rway("t", Benchmark::Lcs, fj, 32, 4, 4)));
    assert_eq!(v, SpecViolation::DecompositionMisaligned { r: 4, tiles: 8 });

    // Nothing was queued, every refusal was accounted, and the pool is
    // fully alive: a valid r = 4 job runs and is bit-exact.
    assert_eq!(server.queue_len(), 0);
    assert_eq!(server.tenant_stats("t").unwrap().rejected, 4);
    assert_eq!(server.alive_workers(), THREADS);
    let oracle = run_benchmark(Benchmark::Ge, Execution::SerialLoops, 32, 2, 1);
    let result = server
        .submit(JobSpec::benchmark_rway("t", Benchmark::Ge, fj, 32, 2, 4))
        .expect("an aligned width must be admitted after refusals")
        .wait()
        .expect("valid r-way job must run");
    assert_eq!(result.digests, vec![oracle.table.bit_digest()]);
    assert_eq!(server.tenant_stats("t").unwrap().completed, 1);
    server.shutdown();
}

#[test]
fn auto_base_jobs_accept_any_power_of_two_width() {
    // With AUTO_BASE the tile grid is unknown at submit time; the grid
    // checks are deferred to dispatch, where `auto_base_with` clamps
    // the tuned base so the root split stays genuinely r-wide.
    let server = server();
    let mut spec = JobSpec::benchmark_tuned("t", Benchmark::Ge, Execution::ForkJoin, 64);
    if let recdp_server::JobPayload::Benchmark { decomposition, .. } = &mut spec.payload {
        *decomposition = 8;
    }
    let oracle = run_benchmark(Benchmark::Ge, Execution::SerialLoops, 64, 8, 1);
    let result = server
        .submit(spec)
        .expect("AUTO_BASE with a power-of-two width is admissible")
        .wait()
        .expect("tuned r-way job must run");
    assert_eq!(result.digests, vec![oracle.table.bit_digest()]);
    server.shutdown();
}

#[test]
fn zero_n_is_invalid_but_auto_base_is_not() {
    let server = server();
    // n = 0 is caught as a size violation (0 is not a power of two)...
    let v = expect_invalid(server.submit(JobSpec::benchmark(
        "t",
        Benchmark::Ge,
        Execution::SerialRdp,
        0,
        8,
    )));
    assert_eq!(v, SpecViolation::NonPowerOfTwoSize { n: 0 });
    // ...while base = 0 is AUTO_BASE, which is always admissible.
    let handle = server
        .submit(JobSpec::benchmark_tuned(
            "t",
            Benchmark::Ge,
            Execution::SerialRdp,
            32,
        ))
        .expect("AUTO_BASE is a valid base");
    assert!(handle.wait().is_ok());
    server.shutdown();
}

#[test]
fn tuned_jobs_digest_match_explicit_base_runs() {
    let server = server();
    let n = 32;
    for benchmark in Benchmark::EXTENDED {
        let oracle = run_benchmark(benchmark, Execution::SerialLoops, n, 8, 1);
        let tuned = server
            .submit(JobSpec::benchmark_tuned(
                "t",
                benchmark,
                Execution::Cnc(CncVariant::Tuner),
                n,
            ))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(
            tuned.digests,
            vec![oracle.table.bit_digest()],
            "{}: tuned (base {}) vs explicit",
            benchmark.name(),
            auto_base(benchmark, n)
        );
    }
    server.shutdown();
}
