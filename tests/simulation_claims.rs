//! The paper's experimental claims, asserted against the simulation
//! engine (the per-figure shape criteria of DESIGN.md).

use recdp_machine::{epyc64, skylake192};
use recdp_suite::{dag_metrics, predict_seconds, Benchmark, FigurePanel, Model, Paradigm};

/// Abstract of the paper, sentence 1: "with a fixed computation
/// resource, moving from small input to larger input, fork-join
/// implementation of DP algorithms outperforms the corresponding
/// data-flow implementation" (GE and FW).
#[test]
fn fixed_machine_growing_input_flips_to_forkjoin() {
    let epyc = epyc64();
    for benchmark in [Benchmark::Ge, Benchmark::Fw] {
        let m = 128;
        let small_cnc = predict_seconds(&epyc, benchmark, 2048, m, Paradigm::CncTuner);
        let small_omp = predict_seconds(&epyc, benchmark, 2048, m, Paradigm::OpenMp);
        assert!(
            small_cnc < small_omp,
            "{}: CnC must win the small problem ({small_cnc} vs {small_omp})",
            benchmark.name()
        );
        let big_cnc = predict_seconds(&epyc, benchmark, 16384, m, Paradigm::CncNative);
        let big_omp = predict_seconds(&epyc, benchmark, 16384, m, Paradigm::OpenMp);
        assert!(
            big_omp < big_cnc,
            "{}: OpenMP must win the big problem ({big_omp} vs {big_cnc})",
            benchmark.name()
        );
    }
}

/// Abstract, sentence 2: "for a fixed size problem, moving the
/// computation to a compute node with a larger number of cores,
/// data-flow implementation outperforms".
#[test]
fn fixed_problem_more_cores_flips_to_dataflow() {
    let (epyc, sky) = (epyc64(), skylake192());
    // GE 8K/64: the EPYC gap (OpenMP ahead or tied) must reverse into a
    // clear CnC win on the 192-core machine.
    let gap = |machine: &recdp_machine::MachineConfig| {
        let cnc = predict_seconds(machine, Benchmark::Ge, 8192, 64, Paradigm::CncTuner);
        let omp = predict_seconds(machine, Benchmark::Ge, 8192, 64, Paradigm::OpenMp);
        omp / cnc // > 1 means CnC ahead
    };
    let epyc_gap = gap(&epyc);
    let sky_gap = gap(&sky);
    assert!(
        sky_gap > epyc_gap,
        "more cores must favour data-flow: {sky_gap} vs {epyc_gap}"
    );
    assert!(sky_gap > 1.0, "on 192 cores CnC must be ahead outright");
}

/// Sec. IV: "for GE and FW ... the issue of artificial dependencies are
/// so problematic [for SW] that even for bigger problem sizes, still
/// data-flow implementation outperforms."
#[test]
fn sw_dataflow_wins_at_every_problem_size() {
    for machine in [epyc64(), skylake192()] {
        for n in [2048usize, 4096, 8192, 16384] {
            let cnc = predict_seconds(&machine, Benchmark::Sw, n, 128, Paradigm::CncNative);
            let omp = predict_seconds(&machine, Benchmark::Sw, n, 128, Paradigm::OpenMp);
            assert!(cnc < omp, "SW n={n} on {}: {cnc} vs {omp}", machine.name);
        }
    }
}

/// Sec. IV: "R-DP data-flow programs incur large runtime overheads on
/// small block sizes" — the CnC curves must rise again at tiny bases,
/// and Manual-CnC (per-task pre-declaration) must be the worst CnC
/// variant there.
#[test]
fn small_blocks_penalise_dataflow_overheads() {
    let sky = skylake192();
    let tiny = predict_seconds(&sky, Benchmark::Ge, 2048, 8, Paradigm::CncNative);
    let sweet = predict_seconds(&sky, Benchmark::Ge, 2048, 64, Paradigm::CncNative);
    assert!(
        tiny > 1.5 * sweet,
        "tiny bases must pay runtime overheads: {tiny} vs {sweet}"
    );
    let manual = predict_seconds(&sky, Benchmark::Ge, 2048, 8, Paradigm::CncManual);
    let tuner = predict_seconds(&sky, Benchmark::Ge, 2048, 8, Paradigm::CncTuner);
    assert!(
        manual > tuner,
        "Manual pre-declaration dominates at tiny tasks"
    );
}

/// Sec. IV: "large base case sizes reduce potential run-time task
/// scheduling options" — every series deteriorates toward the largest
/// bases (the right side of every panel in Figs. 4-9).
#[test]
fn huge_bases_hurt_everyone() {
    let epyc = epyc64();
    for paradigm in Paradigm::EXECUTABLE {
        let mid = predict_seconds(&epyc, Benchmark::Ge, 8192, 256, paradigm);
        let huge = predict_seconds(&epyc, Benchmark::Ge, 8192, 2048, paradigm);
        assert!(huge > 2.0 * mid, "{}: {huge} vs {mid}", paradigm.label());
    }
}

/// Sec. IV: "Best running time is achieved with block size of 128 and
/// 256" — the optimum must fall in the small-to-mid range, never at the
/// extremes of the sweep.
#[test]
fn best_base_is_interior() {
    let bases = [64usize, 128, 256, 512, 1024, 2048];
    for machine in [epyc64(), skylake192()] {
        let panel = FigurePanel::compute(
            &machine,
            Benchmark::Ge,
            8192,
            &bases,
            &[Paradigm::CncTuner, Paradigm::OpenMp],
        );
        for series in ["CnC_tuner", "OpenMP"] {
            let best = panel.best_base(series).unwrap();
            assert!(
                best <= 256,
                "{series} on {}: best base {best} should be small-to-mid",
                machine.name
            );
        }
    }
}

/// The structural root cause: the fork-join span exceeds the data-flow
/// span and the ratio grows with the tile count, for all benchmarks.
#[test]
fn span_inflation_grows() {
    for benchmark in Benchmark::ALL {
        let r8 = {
            let fj = dag_metrics(benchmark, Model::ForkJoin, 8, 64);
            let df = dag_metrics(benchmark, Model::DataFlow, 8, 64);
            fj.span / df.span
        };
        let r64 = {
            let fj = dag_metrics(benchmark, Model::ForkJoin, 64, 64);
            let df = dag_metrics(benchmark, Model::DataFlow, 64, 64);
            fj.span / df.span
        };
        assert!(r8 > 1.0 && r64 > r8, "{}: {r8} -> {r64}", benchmark.name());
    }
}

/// The analytical model must stay an *upper-bound-flavoured* estimate:
/// above the simulated best case at cache-friendly bases (it assumes
/// maximum misses) yet within two orders of magnitude.
#[test]
fn estimated_series_is_a_sane_envelope() {
    let epyc = epyc64();
    for n in [2048usize, 8192] {
        let est = predict_seconds(&epyc, Benchmark::Ge, n, 128, Paradigm::Estimated);
        let best = Paradigm::EXECUTABLE
            .iter()
            .map(|&p| predict_seconds(&epyc, Benchmark::Ge, n, 128, p))
            .fold(f64::INFINITY, f64::min);
        assert!(est > best, "n={n}: estimate {est} vs best {best}");
        assert!(
            est < 100.0 * best,
            "n={n}: estimate {est} not absurd vs {best}"
        );
    }
}

/// The practical face of span inflation: worker utilisation. On a small
/// problem with many cores, the fork-join schedule leaves workers idle
/// (the paper's "resource underutilization") where the data-flow
/// schedule keeps them busier.
#[test]
fn forkjoin_utilization_suffers_on_small_problems() {
    use recdp_machine::ParadigmOverheads;
    use recdp_sim::{config_for, simulate_with_timeline, Workload};
    use recdp_suite::dag;

    let sky = skylake192();
    let t = 16; // a 2K problem at base 128
    let fj_graph = dag(Benchmark::Ge, Model::ForkJoin, t, 128);
    let df_graph = dag(Benchmark::Ge, Model::DataFlow, t, 128);
    let fj_cfg = config_for(
        &sky,
        &ParadigmOverheads::fork_join(),
        Workload::Ge,
        128,
        192,
    );
    let df_cfg = config_for(
        &sky,
        &ParadigmOverheads::cnc_tuner(),
        Workload::Ge,
        128,
        192,
    );
    let (fj, fj_tl) = simulate_with_timeline(&fj_graph, &fj_cfg, 16);
    let (df, df_tl) = simulate_with_timeline(&df_graph, &df_cfg, 16);
    assert!(
        df.utilization > 2.0 * fj.utilization,
        "data-flow must keep 192 cores much busier: {} vs {}",
        df.utilization,
        fj.utilization
    );
    // Timelines are consistent with the aggregates.
    let mean = |tl: &[f64]| tl.iter().sum::<f64>() / tl.len() as f64;
    assert!((mean(&fj_tl) - fj.utilization).abs() < 1e-9);
    assert!((mean(&df_tl) - df.utilization).abs() < 1e-9);
}

/// EXTRA from the paper's intro: parametric r-way recursion interpolates
/// between the 2-way fork-join structure and the true-dependency width.
#[test]
fn rway_interpolates_between_models() {
    use recdp_taskgraph::{ge_kernel_flops, metrics::analyze, rway};
    let f = ge_kernel_flops(64);
    let t = 16;
    let s2 = analyze(&rway::ge(t, 2, &f)).span;
    let s16 = analyze(&rway::ge(t, 16, &f)).span;
    let df = dag_metrics(Benchmark::Ge, Model::DataFlow, t, 64).span;
    assert!(s16 < s2, "wider radix cuts artificial span: {s16} < {s2}");
    assert!(s16 >= df - 1e-9, "but never below the true dependencies");
}
