//! Spec-generic structural properties of the r-way decomposition.
//!
//! Every [`DpSpec`] must uphold the `expand` contract at *every*
//! decomposition width, not just the historical 2-way default:
//!
//! * flattening the stage tree depth-first reaches each of the spec's
//!   base tiles exactly once (the r-way loops neither drop nor
//!   duplicate work), and
//! * that serial order respects [`DpSpec::reads`] — every tile a task
//!   consumes was produced by an earlier stage, so the stage lists
//!   really are a topological order of the true dependency graph.
//!
//! The digest half closes the loop on the facade: at r in {2, 4} every
//! execution model must stay bitwise-identical to the serial loops
//! oracle, because the decomposition reshapes the schedule, never the
//! per-cell arithmetic.

use std::collections::{HashMap, HashSet};

use recdp::prelude::*;
use recdp_kernels::workloads::{chain_dims, dna_sequence, fw_matrix, ge_matrix};
use recdp_kernels::{
    fw::FwSpec, ge::GeSpec, lcs::LcsSpec, paren::ParenSpec, sw::SwSpec, Call, DpSpec, TileKey,
};

const N: usize = 64;
const BASE: usize = 4; // t = 16 tiles: aligned for r in {2, 4}; 8 clamps

fn flatten<S: DpSpec>(spec: &S, call: &Call, order: &mut Vec<TileKey>) {
    if call.s == 1 {
        order.push(spec.tile(call));
        return;
    }
    for stage in spec.expand(call) {
        for sub in &stage {
            flatten(spec, sub, order);
        }
    }
}

fn check_structure<S: DpSpec>(spec: &S, label: &str, r: u32) {
    let mut order = Vec::new();
    flatten(spec, &spec.root(), &mut order);

    // Exactly the manual (flat data-flow) task list, each tile once.
    let mut seen: HashMap<TileKey, u32> = HashMap::new();
    for &tile in &order {
        *seen.entry(tile).or_insert(0) += 1;
    }
    let manual: HashSet<TileKey> = spec.manual_calls().iter().map(|c| spec.tile(c)).collect();
    assert_eq!(
        seen.len(),
        manual.len(),
        "{label} r={r}: expansion tile set diverges from manual_calls"
    );
    for (tile, count) in &seen {
        assert!(manual.contains(tile), "{label} r={r}: extra tile {tile:?}");
        assert_eq!(*count, 1, "{label} r={r}: tile {tile:?} visited {count}x");
    }

    // The serial stage order is a topological order of `reads`.
    let mut done: HashSet<TileKey> = HashSet::new();
    for tile in order {
        for read in spec.reads(tile) {
            assert!(
                done.contains(&read),
                "{label} r={r}: tile {tile:?} reads {read:?} before it is written"
            );
        }
        done.insert(tile);
    }
}

#[test]
fn every_spec_expands_each_tile_once_in_dependency_order() {
    let mut ge_m = ge_matrix(N, 11);
    let mut fw_m = fw_matrix(N, 11, 0.4);
    let mut sw_m = Matrix::zeros(N);
    let mut lcs_m = Matrix::zeros(N);
    let mut paren_m = Matrix::zeros(N);
    let a = dna_sequence(N, 5);
    let b = dna_sequence(N, 6);
    let dims = chain_dims(N, 7);
    for r in [2u32, 4, 8] {
        let d = Decomposition::new(r);
        check_structure(
            &GeSpec::new(ge_m.ptr(), BASE).with_decomposition(d),
            "GE",
            r,
        );
        check_structure(
            &FwSpec::new(fw_m.ptr(), BASE).with_decomposition(d),
            "FW",
            r,
        );
        check_structure(
            &SwSpec::new(sw_m.ptr(), &a, &b, BASE).with_decomposition(d),
            "SW",
            r,
        );
        check_structure(
            &LcsSpec::new(lcs_m.ptr(), &a, &b, BASE).with_decomposition(d),
            "LCS",
            r,
        );
        check_structure(
            &ParenSpec::new(paren_m.ptr(), &dims, BASE).with_decomposition(d),
            "PAREN",
            r,
        );
    }
}

#[test]
fn all_execution_models_digest_identical_across_decompositions() {
    let executions = [
        Execution::SerialRdp,
        Execution::ForkJoin,
        Execution::Cnc(CncVariant::Native),
        Execution::Cnc(CncVariant::Tuner),
        Execution::Cnc(CncVariant::Manual),
        Execution::Cnc(CncVariant::NonBlocking),
    ];
    let (n, base, threads) = (32, 4, 2);
    for benchmark in Benchmark::EXTENDED {
        let oracle = run_benchmark(benchmark, Execution::SerialLoops, n, base, 1);
        let digest = oracle.table.bit_digest();
        for r in [2u32, 4] {
            for execution in executions {
                let out = run_benchmark_with(
                    benchmark,
                    execution,
                    n,
                    base,
                    threads,
                    Decomposition::new(r),
                );
                assert_eq!(
                    out.table.bit_digest(),
                    digest,
                    "{} r={r} {}: digest drift from the loops oracle",
                    benchmark.name(),
                    execution.label()
                );
                assert!(out.table.bitwise_eq(&oracle.table));
            }
        }
    }
}
